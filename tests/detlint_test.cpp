// Unit tests for detlint, the determinism static-analysis pass. These scan
// in-memory fixture snippets so the expected findings are explicit; the
// shipped tree itself is gated by the DetlintTreeClean CTest (which runs
// tools/run_detlint.sh over src/, tools/, bench/).

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "detlint.hpp"

namespace {

using detlint::Finding;
using detlint::Rule;

std::vector<Finding> scan(std::string_view src,
                          const detlint::Options& opts = {}) {
  return detlint::scanSource(src, "fixture.cpp", opts);
}

bool hasFinding(const std::vector<Finding>& fs, Rule rule, int line) {
  return std::any_of(fs.begin(), fs.end(), [&](const Finding& f) {
    return f.rule == rule && f.line == line;
  });
}

// ----------------------------------------------------------- R1 unordered

TEST(DetlintR1, FlagsUnorderedMapAndSet) {
  const auto fs = scan(
      "#include <unordered_map>\n"
      "std::unordered_map<int, int> m;\n"
      "std::unordered_set<long> s;\n");
  ASSERT_EQ(fs.size(), 2u);
  EXPECT_TRUE(hasFinding(fs, Rule::UnorderedIter, 2));
  EXPECT_TRUE(hasFinding(fs, Rule::UnorderedIter, 3));
}

TEST(DetlintR1, IncludeLineAloneIsNotAFinding) {
  EXPECT_TRUE(scan("#include <unordered_map>\n#include <ctime>\n").empty());
}

TEST(DetlintR1, NamesInsideStringsAndCommentsAreIgnored) {
  const auto fs = scan(
      "const char* kDoc = \"prefer unordered_map here\";\n"
      "// unordered_map is mentioned but not used\n"
      "/* std::unordered_set<int> s; */\n"
      "char c = '\\\"'; int unordered_map_count = 0;\n");
  EXPECT_TRUE(fs.empty());
}

TEST(DetlintR1, OrderedContainersAreClean) {
  EXPECT_TRUE(
      scan("std::map<int, int> m;\nstd::set<long> s;\nmsim::FlatMap64<int> f;\n")
          .empty());
}

TEST(DetlintR1, TimerWheelLaneIdiomsAreClean) {
  // Representative of the simulator's wheel front-end: occupancy bitmaps,
  // shift-derived lane indices, and pooled block chains. None of it touches
  // iteration-order-sensitive containers, ambient time, or pointer keys, so
  // detlint must stay quiet on the style the hot path is written in.
  const auto fs = scan(
      "std::array<std::uint64_t, 16> bits{};\n"
      "std::uint32_t lane = (timeNs >> shift) & 255u;\n"
      "bits[lane >> 6] |= 1ull << (lane & 63u);\n"
      "int gap = std::countr_zero(word >> bit);\n"
      "std::vector<Lane> lanes(levels * slots);\n"
      "for (std::uint32_t b = lanes[i].head; b != kNoBlock; b = next(b)) {}\n"
      "std::sort(run.begin(), run.end(), byTimeSeq);\n");
  EXPECT_TRUE(fs.empty());
}

TEST(DetlintR1, InterestGridSoAIdiomsAreClean) {
  // Representative of the interest layer's hot path: structure-of-arrays
  // columns indexed by dense slot, packed integer cell keys, row-major cell
  // scans, and sorted slot lists inside each cell. The visit order is a
  // pure function of positions and slot numbers — detlint must not mistake
  // the style for order-sensitive iteration.
  const auto fs = scan(
      "std::vector<double> posX_, posY_;\n"
      "std::vector<std::uint64_t> ids_;\n"
      "std::uint64_t key = (ux << 32) | uy;\n"
      "for (std::int64_t qy = qy0; qy <= qy1; ++qy) {\n"
      "  for (std::int64_t qx = qx0; qx <= qx1; ++qx) {\n"
      "    const std::uint32_t* cell = cells.find(packCell(qx, qy));\n"
      "  }\n"
      "}\n"
      "std::lower_bound(cell.slots.begin(), cell.slots.end(), slot);\n"
      "msim::FlatMap64<std::uint32_t> cells;\n");
  EXPECT_TRUE(fs.empty());
}

// ---------------------------------------------------------- R2 wall clock

TEST(DetlintR2, FlagsAmbientTimeAndEntropy) {
  const auto fs = scan(
      "std::random_device rd;\n"
      "auto t = std::chrono::steady_clock::now();\n"
      "auto w = std::chrono::system_clock::now();\n"
      "long x = time(nullptr);\n"
      "int r = rand();\n"
      "std::srand(42);\n");
  EXPECT_TRUE(hasFinding(fs, Rule::WallClock, 1));
  EXPECT_TRUE(hasFinding(fs, Rule::WallClock, 2));
  EXPECT_TRUE(hasFinding(fs, Rule::WallClock, 3));
  EXPECT_TRUE(hasFinding(fs, Rule::WallClock, 4));
  EXPECT_TRUE(hasFinding(fs, Rule::WallClock, 5));
  EXPECT_TRUE(hasFinding(fs, Rule::WallClock, 6));
}

TEST(DetlintR2, MemberAndQualifiedLookalikesAreClean) {
  const auto fs = scan(
      "auto now = sim.time();\n"          // member call
      "auto t = bed->clock();\n"          // arrow member call
      "auto d = Duration::time(3);\n"     // non-std qualifier
      "int time = 3; int y = time + 1;\n"  // variable named time, no call
      "double r = rng.uniform(0.0, 1.0);\n");
  EXPECT_TRUE(fs.empty());
}

TEST(DetlintR2, AllowlistedShimIsExempt) {
  detlint::Options opts;
  opts.wallClockAllowlist.push_back("fixture.cpp");
  EXPECT_TRUE(scan("std::random_device rd;\nint r = rand();\n", opts).empty());
}

// --------------------------------------------------------- R3 pointer key

TEST(DetlintR3, FlagsPointerKeyedContainers) {
  const auto fs = scan(
      "std::map<Room*, int> byRoom;\n"
      "std::set<const User*> users;\n"
      "std::map<std::shared_ptr<Room>, int> byHandle;\n"
      "std::map<uintptr_t, int> byAddr;\n");
  ASSERT_EQ(fs.size(), 4u);
  for (int line = 1; line <= 4; ++line) {
    EXPECT_TRUE(hasFinding(fs, Rule::PointerKey, line)) << line;
  }
}

TEST(DetlintR3, PointerValuesAndValueKeysAreClean) {
  const auto fs = scan(
      "std::map<std::uint64_t, Room*> rooms;\n"
      "std::map<TcpConnKey, TcpSocket*> conns;\n"
      "std::set<std::uint64_t> ids;\n"
      "bool lt = a < b;\n");  // '<' that is a comparison, not a template
  EXPECT_TRUE(fs.empty());
}

TEST(DetlintR3, FlagsPointerKeyedAvatarMaps) {
  // The anti-pattern the interest layer's SoA design exists to forbid:
  // bucketing avatars by object address. Address order varies run to run,
  // so any iteration (fan-out, digesting, cell membership) keyed this way
  // breaks cross-thread digest invariance. The sanctioned shape is a dense
  // slot index into column vectors plus integer cell keys.
  const auto fs = scan(
      "std::map<Avatar*, CellId> cellOf;\n"
      "std::map<const AvatarState*, std::uint32_t> slotOf;\n"
      "std::set<Avatar*> inView;\n");
  ASSERT_EQ(fs.size(), 3u);
  for (int line = 1; line <= 3; ++line) {
    EXPECT_TRUE(hasFinding(fs, Rule::PointerKey, line)) << line;
  }
}

// -------------------------------------------------------- R5 thread order

TEST(DetlintR5, FlagsThisThreadSleeps) {
  const auto fs = scan(
      "std::this_thread::sleep_for(std::chrono::milliseconds(5));\n"
      "std::this_thread::sleep_until(deadline);\n"
      "std::this_thread::yield();\n");
  // One finding per line: this_thread itself is the offender; the qualified
  // sleep_for/sleep_until are not double-reported.
  ASSERT_EQ(fs.size(), 3u);
  for (int line = 1; line <= 3; ++line) {
    EXPECT_TRUE(hasFinding(fs, Rule::ThreadOrder, line)) << line;
  }
}

TEST(DetlintR5, FlagsBareSleepCalls) {
  const auto fs = scan(
      "sleep_for(backoff);\n"
      "sleep_until(wakeAt);\n");
  ASSERT_EQ(fs.size(), 2u);
  EXPECT_TRUE(hasFinding(fs, Rule::ThreadOrder, 1));
  EXPECT_TRUE(hasFinding(fs, Rule::ThreadOrder, 2));
}

TEST(DetlintR5, FlagsStdMutexFamily) {
  const auto fs = scan(
      "std::mutex mu;\n"
      "std::lock_guard<std::mutex> lock{mu};\n"
      "std::shared_mutex rw;\n"
      "std::recursive_timed_mutex rt;\n");
  // Line 2 mentions std::mutex inside the lock_guard template argument, so
  // the mutex type itself is what trips the rule there too.
  ASSERT_EQ(fs.size(), 4u);
  for (int line = 1; line <= 4; ++line) {
    EXPECT_TRUE(hasFinding(fs, Rule::ThreadOrder, line)) << line;
  }
}

TEST(DetlintR5, FlagsThreadIdBranching) {
  const auto fs = scan(
      "if (worker.get_id() == owner) { fastPath(); }\n"
      "auto id = std::this_thread::get_id();\n");
  // Line 2 reports this_thread once, not this_thread + get_id.
  ASSERT_EQ(fs.size(), 2u);
  EXPECT_TRUE(hasFinding(fs, Rule::ThreadOrder, 1));
  EXPECT_TRUE(hasFinding(fs, Rule::ThreadOrder, 2));
}

TEST(DetlintR5, LookalikesAreClean) {
  const auto fs = scan(
      "cv.wait_for(lock, timeout);\n"        // not a host sleep
      "net::mutex m;\n"                      // project-local type
      "MutexStats sleep_forensics;\n"        // substring, not a token
      "// std::mutex is discussed here\n"    // comment
      "const char* doc = \"sleep_for\";\n"   // string literal
      "int mutex = 3;\n");                   // unqualified identifier
  EXPECT_TRUE(fs.empty());
}

TEST(DetlintR5, PragmaSuppresses) {
  const auto fs = scan(
      "std::mutex mu;  // detlint:allow(thread-order) guards an "
      "order-independent dedup table\n"
      "// detlint:allow(thread-order) first-error capture; any racing\n"
      "// exception is a valid report.\n"
      "std::lock_guard<std::mutex> lock{mu};\n");
  EXPECT_TRUE(fs.empty());
}

TEST(DetlintR5, SuppressionIsRuleScoped) {
  // A thread-order pragma must not hide a wall-clock finding on the line.
  const auto fs = scan(
      "// detlint:allow(thread-order) justified elsewhere\n"
      "std::mutex mu; int r = rand();\n");
  ASSERT_EQ(fs.size(), 1u);
  EXPECT_EQ(fs[0].rule, Rule::WallClock);
}

// --------------------------------------------------- pragmas and R4 hygiene

TEST(DetlintPragma, SameLineSuppression) {
  const auto fs = scan(
      "std::unordered_map<int, int> m;  // detlint:allow(unordered-iter) "
      "lookup only, never iterated\n");
  EXPECT_TRUE(fs.empty());
}

TEST(DetlintPragma, CommentAboveSuppressesNextCodeLine) {
  const auto fs = scan(
      "// detlint:allow(unordered-iter) dedup table; never iterated, so\n"
      "// order cannot leak into the simulation.\n"
      "std::unordered_map<int, int> m;\n");
  EXPECT_TRUE(fs.empty());
}

TEST(DetlintPragma, SuppressionIsRuleScoped) {
  // An unordered-iter pragma must not hide a wall-clock finding.
  const auto fs = scan(
      "// detlint:allow(unordered-iter) justified elsewhere\n"
      "int r = rand();\n");
  ASSERT_EQ(fs.size(), 1u);
  EXPECT_EQ(fs[0].rule, Rule::WallClock);
}

TEST(DetlintPragma, FileScopeCoversWholeFile) {
  const auto fs = scan(
      "// detlint:allow-file(wall-clock) this tool reports real timings\n"
      "int a = rand();\n"
      "long b = time(nullptr);\n"
      "std::unordered_map<int, int> m;\n");
  ASSERT_EQ(fs.size(), 1u);  // the unordered_map is still flagged
  EXPECT_EQ(fs[0].rule, Rule::UnorderedIter);
}

TEST(DetlintPragma, MissingJustificationIsAFinding) {
  const auto fs = scan(
      "std::unordered_map<int, int> m;  // detlint:allow(unordered-iter)\n");
  // The pragma is malformed, so it reports R4 AND fails to suppress R1.
  ASSERT_EQ(fs.size(), 2u);
  EXPECT_TRUE(hasFinding(fs, Rule::Pragma, 1));
  EXPECT_TRUE(hasFinding(fs, Rule::UnorderedIter, 1));
}

TEST(DetlintPragma, UnknownRuleNameIsAFinding) {
  const auto fs = scan("// detlint:allow(no-such-rule) because reasons\nint x;\n");
  ASSERT_EQ(fs.size(), 1u);
  EXPECT_EQ(fs[0].rule, Rule::Pragma);
  EXPECT_NE(fs[0].message.find("no-such-rule"), std::string::npos);
}

// ----------------------------------------------------- baseline + formats

TEST(DetlintBaseline, RoundTripSuppressesExactFindings) {
  const auto fs = scan("std::unordered_map<int, int> m;\nint r = rand();\n");
  ASSERT_EQ(fs.size(), 2u);

  const std::string path = ::testing::TempDir() + "detlint_baseline_test.txt";
  {
    std::ofstream out{path};
    // Baseline only the unordered_map finding.
    out << "# comment line\n" << fs[0].key() << "\n";
  }
  detlint::Baseline baseline;
  ASSERT_TRUE(baseline.load(path));
  EXPECT_EQ(baseline.size(), 1u);
  const auto remaining = detlint::applyBaseline(fs, baseline);
  ASSERT_EQ(remaining.size(), 1u);
  EXPECT_EQ(remaining[0].rule, Rule::WallClock);
  std::remove(path.c_str());
}

TEST(DetlintBaseline, SerializeIsSortedAndCommented) {
  const auto fs = scan("int r = rand();\nstd::unordered_map<int, int> m;\n");
  const std::string text = detlint::Baseline::serialize(fs);
  EXPECT_NE(text.find("# detlint baseline"), std::string::npos);
  EXPECT_NE(text.find("fixture.cpp:1:wall-clock"), std::string::npos);
  EXPECT_NE(text.find("fixture.cpp:2:unordered-iter"), std::string::npos);
}

TEST(DetlintFormat, TextAndJsonAndExitCodes) {
  const auto clean = scan("int x = 1;\n");
  EXPECT_EQ(detlint::exitCodeFor(clean), 0);
  EXPECT_EQ(detlint::formatJson(clean), "[]\n");

  const auto fs = scan("std::unordered_map<int, int> m;\n");
  EXPECT_EQ(detlint::exitCodeFor(fs), 1);
  const std::string text = detlint::formatText(fs);
  EXPECT_NE(text.find("fixture.cpp:1: [unordered-iter]"), std::string::npos);
  const std::string json = detlint::formatJson(fs);
  EXPECT_NE(json.find("\"rule\": \"unordered-iter\""), std::string::npos);
  EXPECT_NE(json.find("\"line\": 1"), std::string::npos);
}

TEST(DetlintLexer, RawStringsAndLineContinuationsAreHandled) {
  const auto fs = scan(
      "const char* q = R\"(std::unordered_map<int,int> decoy; rand();)\";\n"
      "#define LONG_MACRO \\\n"
      "  unordered_map\n"
      "std::unordered_map<int, int> real;\n");
  ASSERT_EQ(fs.size(), 1u);
  EXPECT_TRUE(hasFinding(fs, Rule::UnorderedIter, 4));
}

// ------------------------------------------------- session-tier idioms

TEST(DetlintSessionIdioms, WallClockBackoffJitterIsFlagged) {
  // The classic nondeterministic reconnect: jitter derived from ambient
  // time. R2 must catch it in sim-visible code.
  const auto fs = scan(
      "auto seedNow = std::chrono::steady_clock::now();\n"
      "auto jitter = seedNow.time_since_epoch().count() % maxJitterNs;\n");
  EXPECT_TRUE(hasFinding(fs, Rule::WallClock, 1));
}

TEST(DetlintSessionIdioms, SleepBasedBackoffIsFlagged) {
  // Blocking the thread for the backoff delay trades sim time for thread
  // order; R5 must catch it.
  const auto fs = scan("std::this_thread::sleep_for(backoffDelay);\n");
  EXPECT_TRUE(hasFinding(fs, Rule::ThreadOrder, 1));
}

// ------------------------------------------------------ R6 hotpath-alloc

TEST(DetlintR6, DirectAllocationUnderHotRootIsFlagged) {
  const auto fs = scan(
      "MSIM_HOT void forward() {\n"
      "  auto* n = new Node;\n"
      "  use(n);\n"
      "}\n");
  ASSERT_EQ(fs.size(), 1u);
  EXPECT_TRUE(hasFinding(fs, Rule::HotPathAlloc, 2));
}

TEST(DetlintR6, AllocationTwoCallsBelowRootIsFlagged) {
  // The acceptance self-test: a `new` two calls below the annotated root
  // must be caught, and the finding must carry the full call chain.
  const auto fs = scan(
      "void leaf() { auto* n = new Node; use(n); }\n"
      "void mid() { leaf(); }\n"
      "// detlint:hotpath per-forward budget is zero allocations\n"
      "void root() { mid(); }\n");
  ASSERT_EQ(fs.size(), 1u);
  EXPECT_TRUE(hasFinding(fs, Rule::HotPathAlloc, 1));
  EXPECT_NE(fs[0].message.find("root -> mid -> leaf"), std::string::npos);
  EXPECT_NE(fs[0].message.find("'root'"), std::string::npos);
}

TEST(DetlintR6, UnreachableAllocationIsClean) {
  const auto fs = scan(
      "void coldSetup() { auto* n = new Node; use(n); }\n"
      "// detlint:hotpath steady path\n"
      "void root() { step(); }\n"
      "void step() {}\n");
  EXPECT_TRUE(fs.empty());
}

TEST(DetlintR6, NoRootMeansNoWalk) {
  EXPECT_TRUE(
      scan("void helper() { auto* n = new Node; use(n); }\n"
           "void caller() { helper(); }\n")
          .empty());
}

TEST(DetlintR6, AmortizedAppendIsClean) {
  // reserve/clear/resize/pop_back on the receiver anywhere in the file is
  // the pool-recycling idiom; the append amortizes to zero.
  const auto fs = scan(
      "void warmUp() { batch_.reserve(1024); }\n"
      "MSIM_HOT void forward() { batch_.push_back(e); }\n");
  EXPECT_TRUE(fs.empty());
}

TEST(DetlintR6, UnreservedAppendIsFlagged) {
  const auto fs = scan("MSIM_HOT void forward() { log_.push_back(e); }\n");
  ASSERT_EQ(fs.size(), 1u);
  EXPECT_TRUE(hasFinding(fs, Rule::HotPathAlloc, 1));
  EXPECT_NE(fs[0].message.find("'log_'"), std::string::npos);
}

TEST(DetlintR6, AllocVocabularyIsCovered) {
  const auto fs = scan(
      "MSIM_HOT void forward() {\n"
      "  auto a = std::make_unique<Node>();\n"
      "  auto b = std::make_shared<Node>();\n"
      "  std::function<void()> f = cb;\n"
      "  std::string s = name;\n"
      "  auto t = std::to_string(42);\n"
      "  std::vector<int> v(n);\n"
      "}\n");
  for (int line = 2; line <= 7; ++line) {
    EXPECT_TRUE(hasFinding(fs, Rule::HotPathAlloc, line)) << line;
  }
}

TEST(DetlintR6, SuppressionAtAllocationSiteWorks) {
  const auto fs = scan(
      "void grow() {\n"
      "  // detlint:allow(hotpath-alloc) slab growth at a new high-water mark\n"
      "  chunks_.push_back(std::make_unique<Slot[]>(kChunk));\n"
      "}\n"
      "// detlint:hotpath steady path recycles the free list\n"
      "void root() { grow(); }\n");
  EXPECT_TRUE(fs.empty());
}

TEST(DetlintR6, UnattachedHotMarkIsAPragmaFinding) {
  const auto fs = scan(
      "// detlint:hotpath nothing below this is a definition\n"
      "int kTable = 3;\n");
  ASSERT_EQ(fs.size(), 1u);
  EXPECT_TRUE(hasFinding(fs, Rule::Pragma, 1));
  EXPECT_NE(fs[0].message.find("hotpath"), std::string::npos);
}

TEST(DetlintR6, BacktickedMentionIsDocumentationNotAMark) {
  EXPECT_TRUE(
      scan("// the `detlint:hotpath` comment form marks templates\n"
           "int kDoc = 1;\n")
          .empty());
}

// -------------------------------------------------------- R7 float order

TEST(DetlintR7, FlagsReduceAndExecutionPolicies) {
  const auto fs = scan(
      "double s = std::reduce(v.begin(), v.end());\n"
      "double t = std::transform_reduce(v.begin(), v.end(), 0.0, add, sq);\n"
      "std::sort(std::execution::par, v.begin(), v.end());\n");
  EXPECT_TRUE(hasFinding(fs, Rule::FloatOrder, 1));
  EXPECT_TRUE(hasFinding(fs, Rule::FloatOrder, 2));
  EXPECT_TRUE(hasFinding(fs, Rule::FloatOrder, 3));
}

TEST(DetlintR7, FlagsFastMathAndOmpReductionPragmas) {
  const auto fs = scan(
      "#pragma GCC optimize(\"fast-math\")\n"
      "#pragma STDC FP_CONTRACT ON\n"
      "#pragma omp parallel for reduction(+ : sum)\n");
  EXPECT_TRUE(hasFinding(fs, Rule::FloatOrder, 1));
  EXPECT_TRUE(hasFinding(fs, Rule::FloatOrder, 2));
  EXPECT_TRUE(hasFinding(fs, Rule::FloatOrder, 3));
}

TEST(DetlintR7, FlagsFloatAccumulationOverUnorderedContainer) {
  const auto fs = scan(
      "// detlint:allow-file(unordered-iter) fixture isolates R7\n"
      "std::unordered_map<int, double> weights;\n"
      "double sum = 0.0;\n"
      "void total() {\n"
      "  for (const auto& kv : weights) {\n"
      "    sum += kv.second;\n"
      "  }\n"
      "}\n");
  ASSERT_EQ(fs.size(), 1u);
  EXPECT_TRUE(hasFinding(fs, Rule::FloatOrder, 6));
  EXPECT_NE(fs[0].message.find("'sum'"), std::string::npos);
}

TEST(DetlintR7, AccumulationOverOrderedContainerIsClean) {
  EXPECT_TRUE(
      scan("std::vector<double> weights;\n"
           "double sum = 0.0;\n"
           "void total() {\n"
           "  for (const auto& w : weights) sum += w;\n"
           "}\n")
          .empty());
}

TEST(DetlintR7, IntegerAccumulationOverUnorderedIsClean) {
  // Integer addition commutes; only float accumulators are order-sensitive.
  const auto fs = scan(
      "// detlint:allow-file(unordered-iter) fixture isolates R7\n"
      "std::unordered_map<int, long> counts;\n"
      "long n = 0;\n"
      "void total() {\n"
      "  for (const auto& kv : counts) n += kv.second;\n"
      "}\n");
  EXPECT_TRUE(fs.empty());
}

TEST(DetlintR7, SuppressionWorks) {
  const auto fs = scan(
      "double s = 0.0;\n"
      "// detlint:allow(float-order) display-only total; never fed back\n"
      "void show() { s = std::reduce(v.begin(), v.end()); }\n");
  EXPECT_TRUE(fs.empty());
}

// ---------------------------------------------------- R8 iter invalidate

TEST(DetlintR8, FlagsEraseInsideOwnRangeFor) {
  const auto fs = scan(
      "void sweep() {\n"
      "  for (auto& s : sessions) {\n"
      "    if (s.dead) sessions.erase(it);\n"
      "  }\n"
      "}\n");
  ASSERT_EQ(fs.size(), 1u);
  EXPECT_TRUE(hasFinding(fs, Rule::IterInvalidate, 3));
  EXPECT_NE(fs[0].message.find("sessions.erase"), std::string::npos);
}

TEST(DetlintR8, FlagsAppendToRangedMemberThroughThis) {
  // `this->` is stripped from both the range expression and the receiver, so
  // the two spellings of the same member still match.
  const auto fs = scan(
      "void fanout() {\n"
      "  for (const auto& q : queue_) {\n"
      "    this->queue_.push_back(q);\n"
      "  }\n"
      "}\n");
  ASSERT_EQ(fs.size(), 1u);
  EXPECT_TRUE(hasFinding(fs, Rule::IterInvalidate, 3));
}

TEST(DetlintR8, MutatingADifferentContainerIsClean) {
  EXPECT_TRUE(
      scan("void collect() {\n"
           "  for (const auto& s : sessions) {\n"
           "    if (s.dead) dead.push_back(s.id);\n"
           "  }\n"
           "  for (auto id : dead) sessions.erase(id);\n"
           "}\n")
          .empty());
}

TEST(DetlintR8, ClassicIndexLoopIsOutOfScope) {
  // An index loop re-reads size() each iteration; it is not standing on
  // iterators, so R8 stays quiet (correct or not, it is a different bug).
  EXPECT_TRUE(
      scan("void grow() {\n"
           "  for (std::size_t i = 0; i < v.size(); ++i) v.push_back(v[i]);\n"
           "}\n")
          .empty());
}

TEST(DetlintR8, SuppressionWorks) {
  const auto fs = scan(
      "void compact() {\n"
      "  for (auto& s : sessions) {\n"
      "    // detlint:allow(iter-invalidate) breaks out of the loop on the\n"
      "    // same statement, so the dead iterator is never touched\n"
      "    if (s.dead) { sessions.erase(s.id); break; }\n"
      "  }\n"
      "}\n");
  EXPECT_TRUE(fs.empty());
}

// --------------------------------------------- multi-file scan + parallel

TEST(DetlintScanSources, FindingsMergeInInputFileOrder) {
  const std::vector<detlint::SourceFile> files = {
      {"b.cpp", "int r = rand();\n"},
      {"a.cpp", "std::unordered_map<int, int> m;\nint s = rand();\n"},
  };
  const auto fs = detlint::scanSources(files);
  ASSERT_EQ(fs.size(), 3u);
  EXPECT_EQ(fs[0].file, "b.cpp");
  EXPECT_EQ(fs[1].file, "a.cpp");
  EXPECT_EQ(fs[1].line, 1);
  EXPECT_EQ(fs[2].file, "a.cpp");
  EXPECT_EQ(fs[2].line, 2);
}

TEST(DetlintScanSources, OutputIsIdenticalForAnyJobCount) {
  std::vector<detlint::SourceFile> files;
  for (int i = 0; i < 48; ++i) {
    std::string name = "f" + std::to_string(i) + ".cpp";
    std::string text = (i % 3 == 0) ? "int r = rand();\n"
                       : (i % 3 == 1)
                           ? "std::unordered_set<int> s;\nlong t = time(nullptr);\n"
                           : "int clean = 1;\n";
    files.push_back({std::move(name), std::move(text)});
  }
  detlint::Options serial;
  serial.jobs = 1;
  detlint::Options wide;
  wide.jobs = 8;
  const auto a = detlint::scanSources(files, serial);
  const auto b = detlint::scanSources(files, wide);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].key(), b[i].key()) << i;
    EXPECT_EQ(a[i].message, b[i].message) << i;
  }
}

// ----------------------------------------------- stale baseline + SARIF

TEST(DetlintBaseline, StaleKeysAreReported) {
  const auto fs = scan("int r = rand();\n");
  detlint::Baseline baseline;
  const std::string path = ::testing::TempDir() + "detlint_stale_test.txt";
  {
    std::ofstream out{path};
    out << "fixture.cpp:1:wall-clock\n"        // live
        << "fixture.cpp:9:unordered-iter\n";   // stale
  }
  ASSERT_TRUE(baseline.load(path));
  const auto stale = baseline.staleKeys(fs);
  ASSERT_EQ(stale.size(), 1u);
  EXPECT_EQ(stale[0], "fixture.cpp:9:unordered-iter");
  std::remove(path.c_str());
}

TEST(DetlintBaseline, SerializeKeysSortsAndDeduplicates) {
  const std::string text = detlint::Baseline::serializeKeys(
      {"b.cpp:2:wall-clock", "a.cpp:1:unordered-iter", "b.cpp:2:wall-clock"});
  const auto first = text.find("a.cpp:1:unordered-iter");
  const auto second = text.find("b.cpp:2:wall-clock");
  ASSERT_NE(first, std::string::npos);
  ASSERT_NE(second, std::string::npos);
  EXPECT_LT(first, second);
  EXPECT_EQ(text.find("b.cpp:2:wall-clock", second + 1), std::string::npos);
}

TEST(DetlintFormat, SarifCarriesRulesAndResults) {
  const auto fs = scan("std::unordered_map<int, int> m;\nint r = rand();\n");
  const std::string sarif = detlint::formatSarif(fs);
  EXPECT_NE(sarif.find("\"version\": \"2.1.0\""), std::string::npos);
  EXPECT_NE(sarif.find("\"name\": \"detlint\""), std::string::npos);
  // All eight rules are declared even when only two fire.
  for (const char* rule :
       {"unordered-iter", "wall-clock", "pointer-key", "pragma", "thread-order",
        "hotpath-alloc", "float-order", "iter-invalidate"}) {
    EXPECT_NE(sarif.find(std::string{"\"id\": \""} + rule + "\""),
              std::string::npos)
        << rule;
  }
  EXPECT_NE(sarif.find("\"ruleId\": \"unordered-iter\""), std::string::npos);
  EXPECT_NE(sarif.find("\"ruleId\": \"wall-clock\""), std::string::npos);
  EXPECT_NE(sarif.find("\"startLine\": 2"), std::string::npos);
  EXPECT_NE(sarif.find("\"uri\": \"fixture.cpp\""), std::string::npos);
}

TEST(DetlintFormat, SarifWithNoFindingsIsStillValid) {
  const std::string sarif = detlint::formatSarif({});
  EXPECT_NE(sarif.find("\"results\": ["), std::string::npos);
  EXPECT_EQ(sarif.find("\"ruleId\""), std::string::npos);
  EXPECT_NE(sarif.find("sarif-2.1.0"), std::string::npos);
}

TEST(DetlintSessionIdioms, SimRngJitterAndScheduledRetryAreClean) {
  // The shipped idiom (src/session/session.cpp): ceiling from plain Duration
  // arithmetic, jitter from the owning simulator's RNG, retry as a scheduled
  // event. detlint must stay quiet on it.
  const auto fs = scan(
      "Duration raw = cfg_.minReconnectDelay;\n"
      "for (std::uint32_t i = 0; i <= attempt; ++i) raw = raw * factor;\n"
      "const Duration jit =\n"
      "    minS + (raw - minS) * sim_.rng().uniform(0.0, 1.0);\n"
      "reconnectTimer_ = sim_.scheduleAfter(jit, [this] { beginAttempt(); });\n");
  EXPECT_TRUE(fs.empty());
}

}  // namespace
