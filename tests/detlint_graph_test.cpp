// Unit tests for detlint's cross-file layer: the function/call index one
// file contributes, and the include-graph call resolution the R6 walk rides
// on. Fixtures are in-memory SourceFiles so every resolution decision —
// include closure, stem-paired .cpp, qualifier filter — is pinned explicitly.

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "detlint.hpp"
#include "index.hpp"

namespace {

using detlint::FileIndex;
using detlint::Finding;
using detlint::FunctionDef;
using detlint::HotPathAlloc;
using detlint::Rule;
using detlint::SourceFile;

const FunctionDef* defNamed(const FileIndex& idx, std::string_view name) {
  for (const FunctionDef& d : idx.defs) {
    if (d.name == name) return &d;
  }
  return nullptr;
}

bool hasFinding(const std::vector<Finding>& fs, Rule rule,
                std::string_view file, int line) {
  return std::any_of(fs.begin(), fs.end(), [&](const Finding& f) {
    return f.rule == rule && f.file == file && f.line == line;
  });
}

// -------------------------------------------------------- function index

TEST(DetlintIndex, FindsFreeFunctionDefinitions) {
  const auto idx = detlint::indexSource(
      "int add(int a, int b) { return a + b; }\n"
      "void noop() {}\n",
      "fixture.cpp");
  ASSERT_EQ(idx.defs.size(), 2u);
  EXPECT_EQ(idx.defs[0].name, "add");
  EXPECT_EQ(idx.defs[0].line, 1);
  EXPECT_EQ(idx.defs[1].name, "noop");
  EXPECT_EQ(idx.defs[1].line, 2);
}

TEST(DetlintIndex, DeclarationsAreNotDefinitions) {
  const auto idx = detlint::indexSource(
      "void declared(int x);\n"
      "int alsoDeclared();\n"
      "void defaulted() = delete;\n"
      "void real() {}\n",
      "fixture.cpp");
  ASSERT_EQ(idx.defs.size(), 1u);
  EXPECT_EQ(idx.defs[0].name, "real");
}

TEST(DetlintIndex, QualifiedMethodDefinitionKeepsQualifier) {
  const auto idx = detlint::indexSource(
      "void Grid::insert(std::uint32_t slot) { slots_.push_back(slot); }\n",
      "fixture.cpp");
  ASSERT_EQ(idx.defs.size(), 1u);
  EXPECT_EQ(idx.defs[0].name, "insert");
  EXPECT_EQ(idx.defs[0].qualifier, "Grid");
  EXPECT_EQ(idx.defs[0].display(), "Grid::insert");
}

TEST(DetlintIndex, SpecifierRunsAndTrailingReturnsAreDefinitions) {
  const auto idx = detlint::indexSource(
      "int Grid::size() const noexcept { return n_; }\n"
      "auto lookup(int k) -> const Cell* { return find(k); }\n"
      "void Hub::step() const override final { tick(); }\n",
      "fixture.cpp");
  ASSERT_EQ(idx.defs.size(), 3u);
  EXPECT_EQ(idx.defs[0].name, "size");
  EXPECT_EQ(idx.defs[1].name, "lookup");
  EXPECT_EQ(idx.defs[2].name, "step");
}

TEST(DetlintIndex, ConstructorInitListIsADefinition) {
  const auto idx = detlint::indexSource(
      "Hub::Hub(Simulator& sim) : sim_{sim}, recs_(kMax), head_{0} {\n"
      "  warmUp();\n"
      "}\n",
      "fixture.cpp");
  ASSERT_EQ(idx.defs.size(), 1u);
  EXPECT_EQ(idx.defs[0].name, "Hub");
  EXPECT_EQ(idx.defs[0].qualifier, "Hub");
  ASSERT_EQ(idx.defs[0].calls.size(), 1u);
  EXPECT_EQ(idx.defs[0].calls[0].name, "warmUp");
}

TEST(DetlintIndex, ControlFlowKeywordsAreNotCalls) {
  const auto idx = detlint::indexSource(
      "void tick() {\n"
      "  if (ready()) { while (more()) { step(); } }\n"
      "  return;\n"
      "}\n",
      "fixture.cpp");
  ASSERT_EQ(idx.defs.size(), 1u);
  std::vector<std::string> names;
  for (const auto& c : idx.defs[0].calls) names.push_back(c.name);
  EXPECT_EQ(names, (std::vector<std::string>{"ready", "more", "step"}));
}

TEST(DetlintIndex, MemberCallsRecordReceiverChain) {
  const auto idx = detlint::indexSource(
      "void flush() {\n"
      "  queue_.clear();\n"
      "  this->stats_.bytes.reset();\n"
      "}\n",
      "fixture.cpp");
  ASSERT_EQ(idx.defs.size(), 1u);
  const auto& calls = idx.defs[0].calls;
  ASSERT_EQ(calls.size(), 2u);
  EXPECT_TRUE(calls[0].member);
  EXPECT_EQ(calls[0].receiver, "queue_");
  EXPECT_EQ(calls[1].name, "reset");
  EXPECT_EQ(calls[1].receiver, "stats_.bytes");  // `this` is stripped
}

TEST(DetlintIndex, HotMacroAndCommentBothMarkRoots) {
  const auto idx = detlint::indexSource(
      "MSIM_HOT void viaMacro() {}\n"
      "// detlint:hotpath zero allocs per forward\n"
      "void viaComment() {}\n"
      "void unmarked() {}\n",
      "fixture.cpp");
  ASSERT_EQ(idx.defs.size(), 3u);
  EXPECT_TRUE(defNamed(idx, "viaMacro")->hot);
  EXPECT_TRUE(defNamed(idx, "viaComment")->hot);
  EXPECT_EQ(defNamed(idx, "viaComment")->hotWhy, "zero allocs per forward");
  EXPECT_FALSE(defNamed(idx, "unmarked")->hot);
  EXPECT_TRUE(idx.unattachedHotMarks.empty());
}

TEST(DetlintIndex, TrailingHotMarkIsUnattached) {
  const auto idx = detlint::indexSource(
      "void f() {}\n"
      "// detlint:hotpath dangling — nothing defined below\n"
      "int kConst = 4;\n",
      "fixture.cpp");
  ASSERT_EQ(idx.unattachedHotMarks.size(), 1u);
  EXPECT_EQ(idx.unattachedHotMarks[0], 2);
}

TEST(DetlintIndex, AllocSitesAreCollectedPerDefinition) {
  const auto idx = detlint::indexSource(
      "void cold() { auto p = std::make_unique<Node>(); use(p); }\n"
      "void colder() { auto* q = new Node; use(q); }\n",
      "fixture.cpp");
  ASSERT_EQ(idx.defs.size(), 2u);
  ASSERT_EQ(idx.defs[0].allocs.size(), 1u);
  EXPECT_EQ(idx.defs[0].allocs[0].line, 1);
  ASSERT_EQ(idx.defs[1].allocs.size(), 1u);
  EXPECT_EQ(idx.defs[1].allocs[0].line, 2);
}

TEST(DetlintIndex, PlacementNewIsNotAnAllocSite) {
  const auto idx = detlint::indexSource(
      "void construct(void* mem) { auto* p = new (mem) Node; use(p); }\n",
      "fixture.cpp");
  ASSERT_EQ(idx.defs.size(), 1u);
  EXPECT_TRUE(idx.defs[0].allocs.empty());
}

// ------------------------------------------------------- call resolution

TEST(DetlintGraph, CrossFileCallResolvesThroughInclude) {
  const std::vector<SourceFile> files = {
      {"util/helper.hpp",
       "inline void helper() { auto* n = new Node; use(n); }\n"},
      {"src/main.cpp",
       "#include \"util/helper.hpp\"\n"
       "// detlint:hotpath forward budget is zero\n"
       "void root() { helper(); }\n"},
  };
  const auto fs = detlint::scanSources(files);
  ASSERT_EQ(fs.size(), 1u);
  EXPECT_TRUE(hasFinding(fs, Rule::HotPathAlloc, "util/helper.hpp", 1));
  EXPECT_NE(fs[0].message.find("root -> helper"), std::string::npos);
}

TEST(DetlintGraph, TransitiveIncludeClosureIsWalked) {
  const std::vector<SourceFile> files = {
      {"a.hpp", "inline void leaf() { auto* n = new Node; use(n); }\n"},
      {"b.hpp",
       "#include \"a.hpp\"\n"
       "inline void mid() { leaf(); }\n"},
      {"main.cpp",
       "#include \"b.hpp\"\n"
       "MSIM_HOT void root() { mid(); }\n"},
  };
  const auto fs = detlint::scanSources(files);
  ASSERT_EQ(fs.size(), 1u);
  EXPECT_TRUE(hasFinding(fs, Rule::HotPathAlloc, "a.hpp", 1));
}

TEST(DetlintGraph, StemPairedCppProvidesMethodBodies) {
  // relay.cpp is not included by anyone, but it stem-pairs with relay.hpp
  // (its own first include), so callers that include relay.hpp reach its
  // method bodies — the standard header/impl split.
  const std::vector<SourceFile> files = {
      {"relay.hpp", "class Relay { void emit(); };\n"},
      {"relay.cpp",
       "#include \"relay.hpp\"\n"
       "void Relay::emit() { trace_.push_back(1); }\n"},
      {"main.cpp",
       "#include \"relay.hpp\"\n"
       "MSIM_HOT void root(Relay& r) { r.emit(); }\n"},
  };
  const auto fs = detlint::scanSources(files);
  ASSERT_EQ(fs.size(), 1u);
  EXPECT_TRUE(hasFinding(fs, Rule::HotPathAlloc, "relay.cpp", 2));
}

TEST(DetlintGraph, FileOutsideIncludeClosureIsNotReached) {
  // The decoy defines the same function name with an allocation, but the
  // root's file never includes it — closure gating must keep it unreachable.
  const std::vector<SourceFile> files = {
      {"decoy.cpp", "void helper() { auto* n = new Node; use(n); }\n"},
      {"main.cpp",
       "void helper() {}\n"
       "MSIM_HOT void root() { helper(); }\n"},
  };
  EXPECT_TRUE(detlint::scanSources(files).empty());
}

TEST(DetlintGraph, QualifierMismatchDoesNotResolve) {
  // A call qualified `Grid::` must not resolve to `Other::warm` even when
  // Other's file is in the include closure.
  const std::vector<SourceFile> files = {
      {"other.hpp",
       "inline void Other::warm() { auto* n = new Node; use(n); }\n"},
      {"main.cpp",
       "#include \"other.hpp\"\n"
       "MSIM_HOT void root() { Grid::warm(); }\n"},
  };
  EXPECT_TRUE(detlint::scanSources(files).empty());
}

TEST(DetlintGraph, RecursionTerminates) {
  const std::vector<SourceFile> files = {
      {"main.cpp",
       "MSIM_HOT void root(int n) {\n"
       "  auto* p = new Node;\n"
       "  use(p);\n"
       "  if (n > 0) root(n - 1);\n"
       "}\n"},
  };
  const auto fs = detlint::scanSources(files);
  ASSERT_EQ(fs.size(), 1u);  // the alloc reports once, not per unrolling
  EXPECT_TRUE(hasFinding(fs, Rule::HotPathAlloc, "main.cpp", 2));
}

TEST(DetlintGraph, UnresolvedExternalCallIsSilent) {
  const std::vector<SourceFile> files = {
      {"main.cpp",
       "MSIM_HOT void root() { std::sort(v.begin(), v.end()); external(); }\n"},
  };
  EXPECT_TRUE(detlint::scanSources(files).empty());
}

TEST(DetlintGraph, FirstRootInFileOrderOwnsSharedCallees) {
  // Two roots reach the same allocation; the walk visits roots in (file,
  // definition) order and reports the construct once, attributed to the
  // first root that reached it.
  const std::vector<SourceFile> files = {
      {"main.cpp",
       "void shared() { auto* n = new Node; use(n); }\n"
       "MSIM_HOT void rootA() { shared(); }\n"
       "MSIM_HOT void rootB() { shared(); }\n"},
  };
  const auto fs = detlint::scanSources(files);
  ASSERT_EQ(fs.size(), 1u);
  EXPECT_NE(fs[0].message.find("'rootA'"), std::string::npos);
}

TEST(DetlintGraph, WalkHotPathsReturnsRootAndPath) {
  std::vector<FileIndex> files;
  files.push_back(detlint::indexSource(
      "void leaf() { auto* n = new Node; use(n); }\n"
      "void mid() { leaf(); }\n"
      "MSIM_HOT void root() { mid(); }\n",
      "one.cpp"));
  const std::vector<HotPathAlloc> hits = detlint::walkHotPaths(files);
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_EQ(hits[0].fileIdx, 0u);
  EXPECT_EQ(hits[0].line, 1);
  EXPECT_EQ(hits[0].root, "root");
  EXPECT_EQ(hits[0].rootFile, "one.cpp");
  EXPECT_EQ(hits[0].rootLine, 3);
  EXPECT_EQ(hits[0].path, "root -> mid -> leaf");
}

TEST(DetlintGraph, DirectLinkInjectionIdiomIsAllocFree) {
  // The PDES direct-link injection shape (pdes.cpp): a MSIM_HOT send()
  // whose contract-violation throw path is pragma-allowed and whose outbox
  // append is amortized (the barrier merge clear()s it in the same file),
  // feeding a hot merge that drains outboxes into a recycled scratch. The
  // whole idiom must come out clean — it is the repo's hot path.
  const std::vector<SourceFile> files = {
      {"engine.cpp",
       "MSIM_HOT void Partition::send(int dst, long t, Fn fn) {\n"
       "  if (t < floor_) {\n"
       "    // detlint:allow(hotpath-alloc) cold contract-violation path\n"
       "    throw std::logic_error(describe(dst, t));\n"
       "  }\n"
       "  outbox_.push_back(Msg{dst, t, fn});\n"
       "}\n"
       "MSIM_HOT void Engine::merge() {\n"
       "  for (Msg& m : src_.outbox_) inboxScratch_.push_back(m);\n"
       "  src_.outbox_.clear();\n"
       "  inject(inboxScratch_);\n"
       "  inboxScratch_.clear();\n"
       "}\n"},
  };
  EXPECT_TRUE(detlint::scanSources(files).empty());
}

TEST(DetlintGraph, UnamortizedOutboxAppendStillFires) {
  // Same send() shape with the barrier-side clear() removed: the append is
  // plain growth on a hot path and must be reported at its own line.
  const std::vector<SourceFile> files = {
      {"engine.cpp",
       "MSIM_HOT void Partition::send(int dst, long t, Fn fn) {\n"
       "  outbox_.push_back(Msg{dst, t, fn});\n"
       "}\n"},
  };
  const auto fs = detlint::scanSources(files);
  ASSERT_EQ(fs.size(), 1u);
  EXPECT_TRUE(hasFinding(fs, Rule::HotPathAlloc, "engine.cpp", 2));
}

TEST(DetlintGraph, SuppressionInOwningFileFiltersGraphFinding) {
  // The allow pragma lives next to the allocation (in the callee's file),
  // not next to the root — the graph pass must honor the owning file's
  // pragmas exactly like a local finding.
  const std::vector<SourceFile> files = {
      {"pool.hpp",
       "inline void grow() {\n"
       "  // detlint:allow(hotpath-alloc) slab growth at a high-water mark\n"
       "  chunks_.push_back(make());\n"
       "}\n"},
      {"main.cpp",
       "#include \"pool.hpp\"\n"
       "MSIM_HOT void root() { grow(); }\n"},
  };
  EXPECT_TRUE(detlint::scanSources(files).empty());
}

}  // namespace
