// Golden-trace determinism: the kernel contract is that one seed produces
// one behaviour — bit-identical event order, stats, and packet traces —
// regardless of how many times, or on how many threads, the sweep runs.
// These tests exercise the hot-path machinery end to end (slot-pooled event
// queue with cancellation churn, equal-timestamp ties, periodic tasks, TCP
// control transfers, relay broadcast fan-out) and hash everything observable.

#include <gtest/gtest.h>

#include <cstdint>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include "core/seedsweep.hpp"
#include "core/testbed.hpp"

namespace msim {
namespace {

// FNV-1a, the usual trace-fingerprint workhorse.
struct TraceHash {
  std::uint64_t h{14695981039346656037ull};
  void mix(std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      h ^= (v >> (8 * i)) & 0xff;
      h *= 1099511628211ull;
    }
  }
  void mix(std::string_view s) {
    for (const char c : s) {
      h ^= static_cast<unsigned char>(c);
      h *= 1099511628211ull;
    }
  }
  void mix(TimePoint t) { mix(static_cast<std::uint64_t>(t.toNanos())); }
};

/// A mixed workload covering every hot path at once, reduced to one hash.
std::uint64_t runScenario(std::uint64_t seed) {
  TraceHash trace;

  Testbed bed{seed};
  bed.deploy(platforms::vrchat());
  TestUserConfig cfg;
  cfg.muted = true;
  for (int i = 0; i < 3; ++i) bed.addUser(cfg);

  Simulator& sim = bed.sim();

  // Periodic task interleaved with the platform's own timers.
  PeriodicTask ticker{sim, Duration::millis(333), [&] {
                        trace.mix("tick");
                        trace.mix(sim.now());
                      }};

  // Cancellation churn: every 500 ms schedule five events and cancel the
  // even-indexed ones before they fire.
  for (int burst = 0; burst < 20; ++burst) {
    sim.schedule(TimePoint::epoch() + Duration::millis(500.0 * burst), [&] {
      std::vector<EventId> ids;
      for (int i = 0; i < 5; ++i) {
        ids.push_back(sim.scheduleAfter(Duration::millis(100 + i), [&, i] {
          trace.mix("fire");
          trace.mix(static_cast<std::uint64_t>(i));
          trace.mix(sim.now());
        }));
      }
      for (std::size_t i = 0; i < ids.size(); i += 2) sim.cancel(ids[i]);
    });
  }

  // Equal-timestamp events must fire in scheduling order.
  const auto tie = TimePoint::epoch() + Duration::seconds(7);
  for (int i = 0; i < 8; ++i) {
    sim.schedule(tie, [&, i] { trace.mix(static_cast<std::uint64_t>(100 + i)); });
  }

  // Launch + join drives the full stack: TLS-over-TCP control downloads,
  // UDP relay broadcast with viewport/LoD filtering, periodic avatar and
  // voice streams.
  sim.schedule(TimePoint::epoch(), [&] {
    for (auto& u : bed.users()) u->client->launch();
  });
  for (int i = 0; i < 3; ++i) {
    sim.schedule(TimePoint::epoch() + Duration::seconds(3 + i),
                 [&, i] { bed.user(i).client->joinEvent(); });
  }

  bed.sim().runFor(Duration::seconds(10));

  // Everything observable goes into the fingerprint: the packet trace
  // (timestamps, sizes, directions), room counters, and kernel counters.
  trace.mix(bed.user(0).capture->exportTraceText());
  trace.mix(bed.deployment().room()->forwardedBytes().toBytes());
  trace.mix(bed.deployment().room()->viewportFilteredBytes().toBytes());
  trace.mix(sim.executedEvents());
  trace.mix(sim.now());
  return trace.h;
}

TEST(GoldenTrace, SameSeedSameTrace) {
  const std::uint64_t first = runScenario(4242);
  const std::uint64_t second = runScenario(4242);
  EXPECT_EQ(first, second);
}

TEST(GoldenTrace, DifferentSeedsDiverge) {
  // Not a strict guarantee, but a hash collision across seeds would itself
  // be a red flag worth failing on.
  EXPECT_NE(runScenario(4242), runScenario(4243));
}

// ---------------------------------------------------------------- SeedSweep

TEST(SeedSweepTest, ResultsArriveInSeedOrder) {
  const std::vector<std::uint64_t> seeds{9, 3, 7, 1};
  const auto out =
      runSeedSweep(seeds, [](std::uint64_t s) { return s * 10; }, 4);
  EXPECT_EQ(out, (std::vector<std::uint64_t>{90, 30, 70, 10}));
}

TEST(SeedSweepTest, ThreadCountDoesNotChangeResults) {
  const auto seeds = defaultSeeds(4);
  const auto serial =
      runSeedSweep(seeds, [](std::uint64_t s) { return runScenario(s); }, 1);
  const auto parallel =
      runSeedSweep(seeds, [](std::uint64_t s) { return runScenario(s); }, 4);
  EXPECT_EQ(serial, parallel);
}

TEST(SeedSweepTest, DefaultSeedsMatchHistoricalSchedule) {
  const auto seeds = defaultSeeds(3);
  ASSERT_EQ(seeds.size(), 3u);
  EXPECT_EQ(seeds[0], 1000u);
  EXPECT_EQ(seeds[1], 8919u);
  EXPECT_EQ(seeds[2], 16838u);
}

TEST(SeedSweepTest, ExceptionsPropagate) {
  const std::vector<std::uint64_t> seeds{1, 2, 3, 4};
  const auto boom = [](std::uint64_t s) -> int {
    if (s == 3) throw std::runtime_error{"seed 3 failed"};
    return static_cast<int>(s);
  };
  EXPECT_THROW(runSeedSweep(seeds, boom, 2), std::runtime_error);
  EXPECT_THROW(runSeedSweep(seeds, boom, 1), std::runtime_error);
}

TEST(SeedSweepTest, EmptySweepIsFine) {
  const auto out =
      runSeedSweep({}, [](std::uint64_t s) { return s; }, 8);
  EXPECT_TRUE(out.empty());
}

}  // namespace
}  // namespace msim
