// The src/cluster subsystem: gateway placement, the shard capacity model,
// live room migration, cluster determinism, and the networked deployment.

#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "avatar/codec.hpp"
#include "cluster/deployment.hpp"
#include "cluster/manager.hpp"
#include "core/experiments.hpp"
#include "core/seedsweep.hpp"

namespace msim::cluster {
namespace {

Message poseMsg(std::uint64_t sender, std::uint64_t seq) {
  Message m;
  m.kind = avatarmsg::kPoseUpdate;
  m.size = ByteSize::bytes(220);
  m.senderId = sender;
  m.sequence = seq;
  return m;
}

DataSpec detachedSpec() {
  DataSpec spec;  // defaults: no filter, no LoD, no user cap
  spec.provisioningFactor = 1.0;
  return spec;
}

// --------------------------------------------------------------- gateway

TEST(GatewayTest, FillToCapacityPacksLowestShardFirst) {
  Simulator sim{1};
  ClusterConfig cfg;
  cfg.initialInstances = 3;
  cfg.policy = PlacementPolicy::FillToCapacity;
  cfg.capacity.softUserCap = 4;
  InstanceManager mgr{sim, detachedSpec(), cfg};

  for (std::uint64_t u = 1; u <= 10; ++u) {
    ASSERT_NE(mgr.joinUser(u, regions::usEast()), nullptr);
  }
  EXPECT_EQ(mgr.instance(0)->userCount(), 4u);
  EXPECT_EQ(mgr.instance(1)->userCount(), 4u);
  EXPECT_EQ(mgr.instance(2)->userCount(), 2u);
}

TEST(GatewayTest, LeastLoadedBalancesEvenly) {
  Simulator sim{1};
  ClusterConfig cfg;
  cfg.initialInstances = 4;
  cfg.policy = PlacementPolicy::LeastLoaded;
  InstanceManager mgr{sim, detachedSpec(), cfg};

  for (std::uint64_t u = 1; u <= 20; ++u) {
    ASSERT_NE(mgr.joinUser(u, regions::usEast()), nullptr);
  }
  for (std::uint32_t i = 0; i < 4; ++i) {
    EXPECT_EQ(mgr.instance(i)->userCount(), 5u) << "shard " << i;
  }
  EXPECT_EQ(mgr.stats().placementsTotal, 20u);
}

TEST(GatewayTest, PlacementIsSticky) {
  Simulator sim{1};
  ClusterConfig cfg;
  cfg.initialInstances = 3;
  cfg.policy = PlacementPolicy::LeastLoaded;
  InstanceManager mgr{sim, detachedSpec(), cfg};

  RelayInstance* first = mgr.joinUser(7, regions::usEast());
  ASSERT_NE(first, nullptr);
  // Load the other shards; the user's resolution must not move.
  for (std::uint64_t u = 100; u < 110; ++u) mgr.joinUser(u, regions::usEast());
  EXPECT_EQ(mgr.gateway().place(7, regions::usEast()), first);
  EXPECT_EQ(mgr.instanceOf(7), first);
}

TEST(GatewayTest, RegionAffinityPrefersUserRegionThenSpillsOver) {
  Simulator sim{1};
  ClusterConfig cfg;
  cfg.initialInstances = 2;
  cfg.policy = PlacementPolicy::RegionAffinity;
  cfg.capacity.softUserCap = 2;
  cfg.regions = {regions::usEast(), regions::europe()};
  InstanceManager mgr{sim, detachedSpec(), cfg};

  // Shard 1 serves europe; European users land there first.
  RelayInstance* a = mgr.joinUser(1, regions::europe());
  RelayInstance* b = mgr.joinUser(2, regions::europe());
  ASSERT_NE(a, nullptr);
  ASSERT_NE(b, nullptr);
  EXPECT_EQ(a->id(), 1u);
  EXPECT_EQ(b->id(), 1u);
  // Europe is at its soft cap; the third European spills to us-east.
  RelayInstance* c = mgr.joinUser(3, regions::europe());
  ASSERT_NE(c, nullptr);
  EXPECT_EQ(c->id(), 0u);
  // Cluster full -> nullptr.
  mgr.joinUser(4, regions::usEast());
  EXPECT_EQ(mgr.joinUser(5, regions::usEast()), nullptr);
}

TEST(GatewayTest, SpunUpInstanceActivatesAfterDelay) {
  Simulator sim{1};
  ClusterConfig cfg;
  cfg.initialInstances = 1;
  cfg.capacity.softUserCap = 1;
  cfg.spinUpDelay = Duration::seconds(2);
  InstanceManager mgr{sim, detachedSpec(), cfg};

  ASSERT_NE(mgr.joinUser(1, regions::usEast()), nullptr);
  RelayInstance& fresh = mgr.spinUp(regions::usEast());
  EXPECT_EQ(fresh.state(), InstanceState::Starting);
  // Not yet bootable: the cluster is full while the new shard boots.
  EXPECT_EQ(mgr.joinUser(2, regions::usEast()), nullptr);
  sim.runFor(Duration::seconds(3));
  EXPECT_EQ(fresh.state(), InstanceState::Active);
  RelayInstance* placed = mgr.joinUser(3, regions::usEast());
  ASSERT_NE(placed, nullptr);
  EXPECT_EQ(placed->id(), fresh.id());
}

// --------------------------------------------------------- capacity model

TEST(CapacityModelTest, IdleShardStaysUninflated) {
  Simulator sim{1};
  ClusterConfig cfg;
  cfg.initialInstances = 1;
  InstanceManager mgr{sim, detachedSpec(), cfg};
  for (std::uint64_t u = 1; u <= 4; ++u) mgr.joinUser(u, regions::usEast());
  sim.runFor(Duration::seconds(5));
  EXPECT_DOUBLE_EQ(mgr.instance(0)->queueInflation(), 1.0);
  EXPECT_LT(mgr.instance(0)->utilization(), 0.01);
}

TEST(CapacityModelTest, SaturationInflatesProcessingDelay) {
  Simulator sim{1};
  ClusterConfig cfg;
  cfg.initialInstances = 1;
  // Tiny budget: 1 core at 1 ms per forward = 1000 forwards/s capacity.
  cfg.capacity.cpuPerForwardUs = 1000.0;
  cfg.capacity.cores = 1.0;
  InstanceManager mgr{sim, detachedSpec(), cfg};
  for (std::uint64_t u = 1; u <= 10; ++u) mgr.joinUser(u, regions::usEast());
  RelayInstance& inst = *mgr.instance(0);
  const double baseFactor = inst.room().provisioningFactor();

  // 10 users at 10 Hz -> 10*10*9 = 900 forwards/s = 90% utilization.
  std::vector<std::unique_ptr<PeriodicTask>> senders;
  for (std::uint64_t u = 1; u <= 10; ++u) {
    std::uint64_t seq = 0;
    senders.push_back(std::make_unique<PeriodicTask>(
        sim, Duration::millis(100), [&inst, u, seq]() mutable {
          inst.room().broadcast(u, poseMsg(u, ++seq));
        }));
  }
  sim.runFor(Duration::seconds(10));

  EXPECT_GT(inst.utilization(), 0.8);
  EXPECT_LT(inst.utilization(), 1.0);
  EXPECT_GT(inst.queueInflation(), 1.2);
  EXPECT_GT(inst.room().provisioningFactor(), baseFactor * 1.2);
  EXPECT_GT(inst.forwardRatePerSec(), 700.0);

  // Load stops; the EWMA decays and the inflation recovers toward 1.
  senders.clear();
  sim.runFor(Duration::seconds(10));
  EXPECT_LT(inst.utilization(), 0.1);
  EXPECT_DOUBLE_EQ(inst.queueInflation(), 1.0);
  EXPECT_DOUBLE_EQ(inst.room().provisioningFactor(), baseFactor);
}

// --------------------------------------------------------------- migration

TEST(MigrationTest, DrainDeliversEveryUpdateExactlyOnceInOrder) {
  Simulator sim{11};
  ClusterConfig cfg;
  cfg.initialInstances = 2;
  cfg.policy = PlacementPolicy::LeastLoaded;
  InstanceManager mgr{sim, detachedSpec(), cfg};

  // LeastLoaded alternates the join order: odd users on shard 0, even on 1.
  for (std::uint64_t u = 1; u <= 8; ++u) {
    ASSERT_NE(mgr.joinUser(u, regions::usEast()), nullptr);
  }
  ASSERT_EQ(mgr.instance(0)->userCount(), 4u);
  ASSERT_EQ(mgr.instance(1)->userCount(), 4u);

  // Per (sender -> receiver) flow: every sequence observed, in order.
  struct Flow {
    std::uint64_t last{0};
    std::uint64_t count{0};
    bool ordered{true};
  };
  std::map<std::pair<std::uint64_t, std::uint64_t>, Flow> flows;
  mgr.setDeliverySink(
      [&flows](std::uint32_t, std::uint64_t toUser, const Message& m) {
        Flow& f = flows[{m.senderId, toUser}];
        if (m.sequence != f.last + 1) f.ordered = false;
        f.last = m.sequence;
        ++f.count;
      });

  // Everyone broadcasts 40 sequenced updates before the drain and 40 after,
  // every 50 ms; the drain lands while late pre-drain forwards are still in
  // flight on the source shard.
  std::vector<std::uint64_t> seqs(9, 0);
  for (int tick = 0; tick < 80; ++tick) {
    const TimePoint at = TimePoint::epoch() + Duration::millis(50.0 * tick);
    const bool preDrain = tick < 40;
    sim.schedule(at, [&mgr, &seqs, preDrain] {
      for (std::uint64_t u = 1; u <= 8; ++u) {
        if (RelayRoom* room = mgr.roomOf(u)) {
          room->broadcast(u, poseMsg(u, ++seqs[u]));
        }
      }
      (void)preDrain;
    });
  }
  sim.schedule(TimePoint::epoch() + Duration::millis(1975), [&mgr] {
    EXPECT_EQ(mgr.drain(1), 4u);
  });
  // Last broadcast fires at 3.95 s; give the tail forwards time to land.
  sim.runFor(Duration::seconds(6));

  EXPECT_EQ(mgr.instance(1)->state(), InstanceState::Stopped);
  EXPECT_EQ(mgr.instance(0)->userCount(), 8u);
  const ClusterStats stats = mgr.stats();
  EXPECT_EQ(stats.migrations, 1u);
  EXPECT_EQ(stats.migratedUsers, 4u);
  EXPECT_EQ(stats.drains, 1u);

  // Pairs co-resident the whole run (same shard before the drain): all 80
  // updates, strictly in order, none lost, none duplicated.
  for (std::uint64_t s = 1; s <= 8; ++s) {
    for (std::uint64_t r = 1; r <= 8; ++r) {
      if (s == r || (s % 2) != (r % 2)) continue;
      const Flow& f = flows[{s, r}];
      EXPECT_TRUE(f.ordered) << s << "->" << r;
      EXPECT_EQ(f.count, 80u) << s << "->" << r;
      EXPECT_EQ(f.last, 80u) << s << "->" << r;
    }
  }
  // Cross-shard pairs meet at the drain: exactly the 40 post-drain updates.
  for (std::uint64_t s = 1; s <= 8; ++s) {
    for (std::uint64_t r = 1; r <= 8; ++r) {
      if (s == r || (s % 2) == (r % 2)) continue;
      const Flow& f = flows[{s, r}];
      EXPECT_EQ(f.count, 40u) << s << "->" << r;
      EXPECT_EQ(f.last, 80u) << s << "->" << r;
      EXPECT_TRUE(f.count == 0 || f.last - f.count == 40u) << s << "->" << r;
    }
  }
}

TEST(MigrationTest, DrainWithoutTargetKeepsServing) {
  Simulator sim{3};
  ClusterConfig cfg;
  cfg.initialInstances = 1;
  InstanceManager mgr{sim, detachedSpec(), cfg};
  for (std::uint64_t u = 1; u <= 3; ++u) mgr.joinUser(u, regions::usEast());
  EXPECT_EQ(mgr.drain(0), 0u);
  EXPECT_EQ(mgr.instance(0)->state(), InstanceState::Draining);
  EXPECT_EQ(mgr.instance(0)->userCount(), 3u);
  // The draining shard still forwards for its residents.
  mgr.roomOf(1)->broadcast(1, poseMsg(1, 1));
  sim.runFor(Duration::seconds(1));
  EXPECT_EQ(mgr.instance(0)->deliveredMessages(), 2u);
}

// ------------------------------------------------------------- determinism

struct ClusterDigest {
  std::uint64_t hash{0};
  bool operator==(const ClusterDigest& o) const { return hash == o.hash; }
};

std::uint64_t mix(std::uint64_t h, std::uint64_t v) {
  h ^= v + 0x9E3779B97F4A7C15ull + (h << 6) + (h >> 2);
  return h;
}

ClusterDigest runClusterScenario(std::uint64_t seed) {
  Simulator sim{seed};
  ClusterConfig cfg;
  cfg.initialInstances = 3;
  cfg.policy = PlacementPolicy::LeastLoaded;
  cfg.capacity.cpuPerForwardUs = 200.0;
  cfg.capacity.cores = 1.0;
  InstanceManager mgr{sim, detachedSpec(), cfg};

  std::uint64_t deliveryHash = 0;
  mgr.setDeliverySink([&deliveryHash](std::uint32_t inst, std::uint64_t toUser,
                                      const Message& m) {
    deliveryHash = mix(deliveryHash, inst);
    deliveryHash = mix(deliveryHash, toUser);
    deliveryHash = mix(deliveryHash, m.sequence);
  });

  const int users = 12;
  for (std::uint64_t u = 1; u <= users; ++u) mgr.joinUser(u, regions::usEast());
  std::vector<std::uint64_t> seqs(users + 1, 0);
  std::vector<std::unique_ptr<PeriodicTask>> senders;
  for (std::uint64_t u = 1; u <= users; ++u) {
    senders.push_back(std::make_unique<PeriodicTask>(
        sim, Duration::millis(100), [&mgr, &seqs, u] {
          if (RelayRoom* room = mgr.roomOf(u)) {
            room->broadcast(u, poseMsg(u, ++seqs[u]));
          }
        }));
  }
  sim.schedule(TimePoint::epoch() + Duration::seconds(3),
               [&mgr] { mgr.drain(2); });
  sim.runFor(Duration::seconds(6));
  senders.clear();
  sim.runFor(Duration::seconds(1));

  ClusterDigest d;
  d.hash = mix(d.hash, deliveryHash);
  const ClusterStats stats = mgr.stats();
  d.hash = mix(d.hash, stats.placementsTotal);
  d.hash = mix(d.hash, stats.migrations);
  d.hash = mix(d.hash, stats.migratedUsers);
  d.hash = mix(d.hash, stats.totalUsers);
  for (const auto& row : stats.shards) {
    d.hash = mix(d.hash, row.users);
    d.hash = mix(d.hash, row.forwards);
    d.hash = mix(d.hash, row.deliveredMsgs);
    d.hash = mix(d.hash, static_cast<std::uint64_t>(row.deliveredBytes.toBytes()));
    d.hash = mix(d.hash, static_cast<std::uint64_t>(row.utilization * 1e9));
  }
  d.hash = mix(d.hash, sim.executedEvents());
  return d;
}

TEST(ClusterDeterminismTest, SeedSweepBitIdenticalForAnyThreadCount) {
  const auto seeds = defaultSeeds(6);
  const auto serial = runSeedSweep(
      seeds, [](std::uint64_t s) { return runClusterScenario(s); }, 1);
  const auto parallel = runSeedSweep(
      seeds, [](std::uint64_t s) { return runClusterScenario(s); }, 4);
  ASSERT_EQ(serial.size(), parallel.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(serial[i], parallel[i]) << "seed index " << i;
  }
  // Different seeds genuinely differ (the digest is not degenerate).
  EXPECT_NE(serial[0], serial[1]);
}

// --------------------------------------------- paper claims (per instance)

struct InstancePoint {
  double downMbps{0.0};
  double fps{0.0};
};

// User 0's downlink and FPS after settling, in a networked deployment —
// `factory` decides whether the data tier is one relay or a cluster.
template <typename Factory>
InstancePoint measureUser0(std::uint64_t seed, int users, Factory&& factory) {
  Testbed bed{seed};
  factory(bed);
  for (int i = 0; i < users; ++i) {
    TestUserConfig cfg;
    cfg.wander = false;
    bed.addUser(cfg);
  }
  bed.sim().schedule(TimePoint::epoch(), [&] {
    for (auto& u : bed.users()) u->client->launch();
  });
  for (int i = 0; i < users; ++i) {
    bed.sim().schedule(
        TimePoint::epoch() + Duration::seconds(2) + Duration::millis(200.0 * i),
        [&, i] { bed.user(i).client->joinEvent(); });
  }
  const double settleSec = 2.0 + 0.2 * users + 6.0;
  const Duration window = Duration::seconds(8);
  bed.sim().runFor(Duration::seconds(settleSec) + window);

  auto& u0 = bed.user(0);
  const auto firstBin = static_cast<std::size_t>(settleSec);
  const auto lastBin =
      static_cast<std::size_t>(settleSec + window.toSeconds()) - 1;
  InstancePoint p;
  p.downMbps = u0.capture->meanRate(Channel::DataDown, firstBin, lastBin).toMbps();
  const TimePoint from = TimePoint::epoch() + Duration::seconds(settleSec);
  p.fps = u0.headset->metrics().averageOver(from, from + window).fps;
  return p;
}

TEST(ClusterPaperClaimsTest, PerInstanceMatchesSingleRelayWithin1Percent) {
  const PlatformSpec spec = platforms::vrchat();
  for (const int n : {2, 8}) {
    const InstancePoint single = measureUser0(
        41, n, [&spec](Testbed& bed) { bed.deploy(spec); });
    // 3 shards packed to n users each: shard 0 hosts users 0..n-1, so user 0
    // lives at the same occupancy as in the single-relay baseline.
    const InstancePoint sharded =
        measureUser0(41, 3 * n, [&spec, n](Testbed& bed) {
          ClusterConfig cfg;
          cfg.initialInstances = 3;
          cfg.policy = PlacementPolicy::FillToCapacity;
          cfg.capacity.softUserCap = n;
          bed.deployCluster(spec, cfg);
        });
    ASSERT_GT(single.downMbps, 0.0);
    ASSERT_GT(single.fps, 0.0);
    EXPECT_NEAR(sharded.downMbps, single.downMbps, 0.01 * single.downMbps)
        << n << " users";
    EXPECT_NEAR(sharded.fps, single.fps, 0.01 * single.fps) << n << " users";
  }
}

// ------------------------------------------------------ networked cluster

TEST(ClusterDeploymentTest, GatewaySteersUsersAcrossShards) {
  Testbed bed{5};
  ClusterConfig cfg;
  cfg.initialInstances = 2;
  cfg.policy = PlacementPolicy::LeastLoaded;
  auto& dep = bed.deployCluster(platforms::vrchat(), cfg);
  for (int i = 0; i < 6; ++i) {
    TestUserConfig ucfg;
    ucfg.wander = false;
    bed.addUser(ucfg);
  }
  bed.sim().schedule(TimePoint::epoch(), [&] {
    for (auto& u : bed.users()) {
      u->client->launch();
      u->client->joinEvent();
    }
  });
  bed.sim().runFor(Duration::seconds(12));

  EXPECT_EQ(dep.manager().instance(0)->userCount(), 3u);
  EXPECT_EQ(dep.manager().instance(1)->userCount(), 3u);
  // The two shards answer at distinct addresses (the §4.2 observation).
  const Endpoint e0 = dep.manager().instance(0)->endpoint();
  const Endpoint e1 = dep.manager().instance(1)->endpoint();
  EXPECT_NE(e0.addr, e1.addr);
  EXPECT_TRUE(dep.isDataAddress(e0.addr));
  EXPECT_TRUE(dep.isDataAddress(e1.addr));
  for (auto& u : bed.users()) {
    EXPECT_EQ(u->client->phase(), ClientPhase::InEvent);
  }
}

TEST(ClusterDeploymentTest, DrainShardMigratesLiveSessions) {
  Testbed bed{6};
  ClusterConfig cfg;
  cfg.initialInstances = 2;
  cfg.policy = PlacementPolicy::LeastLoaded;
  auto& dep = bed.deployCluster(platforms::vrchat(), cfg);
  for (int i = 0; i < 6; ++i) {
    TestUserConfig ucfg;
    ucfg.wander = false;
    bed.addUser(ucfg);
  }
  bed.sim().schedule(TimePoint::epoch(), [&] {
    for (auto& u : bed.users()) {
      u->client->launch();
      u->client->joinEvent();
    }
  });
  bed.sim().runFor(Duration::seconds(10));
  ASSERT_EQ(dep.manager().instance(1)->userCount(), 3u);

  bed.sim().schedule(bed.sim().now(), [&dep] {
    EXPECT_EQ(dep.drainShard(1), 3u);
  });
  bed.sim().runFor(Duration::seconds(10));

  // Everyone now lives in shard 0's room; the drained shard is empty and
  // clients never noticed (still in the event, data still flowing).
  EXPECT_EQ(dep.manager().instance(0)->userCount(), 6u);
  EXPECT_EQ(dep.manager().instance(1)->userCount(), 0u);
  for (auto& u : bed.users()) {
    EXPECT_EQ(u->client->phase(), ClientPhase::InEvent);
  }
  const auto lastBin = static_cast<std::size_t>(
      bed.sim().now().sinceEpoch().toSeconds()) - 1;
  // Post-drain downlink on a shard-1 user: all five peers' updates arrive.
  EXPECT_GT(bed.user(1)
                .capture->meanRate(Channel::DataDown, lastBin - 3, lastBin)
                .toMbps(),
            0.0);
}

}  // namespace
}  // namespace msim::cluster
