// Cross-cutting properties: determinism, capture configuration, connection
// reuse, fabric aliasing — the guarantees the experiment harness rests on.

#include <gtest/gtest.h>

#include "core/experiments.hpp"

namespace msim {
namespace {

// The whole study depends on this: identical seeds -> identical runs.
TEST(DeterminismTest, SameSeedSameBytes) {
  auto run = [](std::uint64_t seed) {
    Testbed bed{seed};
    bed.deploy(platforms::worlds());
    TestUserConfig cfg;
    cfg.wander = true;  // exercises the RNG-heavy paths too
    TestUser& u1 = bed.addUser(cfg);
    TestUser& u2 = bed.addUser(cfg);
    bed.sim().schedule(TimePoint::epoch(), [&] {
      u1.client->launch();
      u2.client->launch();
      u1.client->joinEvent();
      u2.client->joinEvent();
    });
    bed.sim().runFor(Duration::seconds(30));
    return std::make_pair(u1.capture->series(Channel::DataUp).total(),
                          u1.capture->series(Channel::DataDown).total());
  };
  const auto a = run(4242);
  const auto b = run(4242);
  EXPECT_DOUBLE_EQ(a.first, b.first);
  EXPECT_DOUBLE_EQ(a.second, b.second);
  const auto c = run(4243);
  EXPECT_NE(a.first, c.first);  // different seed, different stochastic path
}

TEST(DeterminismTest, ExperimentRowsAreReproducible) {
  const TwoUserThroughputRow r1 = runTwoUserThroughput(platforms::vrchat(), 2);
  const TwoUserThroughputRow r2 = runTwoUserThroughput(platforms::vrchat(), 2);
  EXPECT_DOUBLE_EQ(r1.upKbps, r2.upKbps);
  EXPECT_DOUBLE_EQ(r1.downKbps, r2.downKbps);
  EXPECT_DOUBLE_EQ(r1.avatarKbps, r2.avatarKbps);
}

TEST(CaptureTest, RecordStorageCanBeDisabled) {
  Testbed bed{7};
  bed.deploy(platforms::vrchat());
  TestUser& u1 = bed.addUser();
  TestUser& u2 = bed.addUser();
  u1.capture->setStoreRecords(false);
  bed.sim().schedule(TimePoint::epoch(), [&] {
    u1.client->launch();
    u2.client->launch();
    u1.client->joinEvent();
    u2.client->joinEvent();
  });
  bed.sim().runFor(Duration::seconds(10));
  EXPECT_TRUE(u1.capture->records().empty());         // no per-packet records
  EXPECT_GT(u1.capture->packetCount(), 0u);           // but counting continues
  EXPECT_GT(u1.capture->series(Channel::DataUp).total(), 0.0);  // and binning
}

TEST(HttpReuseTest, SecondRequestSkipsHandshakes) {
  Simulator sim{7};
  Network net{sim};
  Node& a = net.addNode("a");
  Node& b = net.addNode("b");
  a.addAddress(Ipv4Address(10, 0, 0, 1));
  b.addAddress(Ipv4Address(10, 0, 0, 2));
  LinkConfig cfg;
  cfg.delay = Duration::millis(20);
  auto [da, db] = Link::connect(a, b, cfg);
  a.setDefaultRoute(da);
  b.setDefaultRoute(db);
  HttpServer server{b, 443};
  server.route("/", [](const HttpRequest&) { return HttpResponse{}; });
  HttpClient client{a};
  Duration first;
  Duration second;
  client.request(Endpoint{b.primaryAddress(), 443}, HttpRequest{"/a"},
                 [&](const HttpResponse&, Duration d) { first = d; });
  sim.run();
  client.request(Endpoint{b.primaryAddress(), 443}, HttpRequest{"/b"},
                 [&](const HttpResponse&, Duration d) { second = d; });
  sim.run();
  // First: TCP + TLS handshakes + request = 3 RTT (120 ms). Second: 1 RTT.
  EXPECT_GT(first.toMillis(), 100.0);
  EXPECT_LT(second.toMillis(), 60.0);
}

TEST(FabricTest, HostAliasRoutesThroughTheHost) {
  Simulator sim{7};
  Network net{sim};
  InternetFabric fabric{net};
  Node& gateway = fabric.attachHost("gw", regions::usEast(), Ipv4Address(10, 1, 0, 1));
  Node& remote = fabric.attachHost("remote", regions::usWest(), Ipv4Address(10, 2, 0, 1));
  // A device behind the gateway.
  Node& inner = net.addNode("inner");
  const Ipv4Address innerAddr{10, 1, 0, 2};
  inner.addAddress(innerAddr);
  auto [devInner, devGw] = Link::connect(inner, gateway, LinkConfig{});
  inner.setDefaultRoute(devInner);
  gateway.addHostRoute(innerAddr, devGw);
  fabric.addHostAlias(gateway, innerAddr);

  int delivered = 0;
  inner.setLocalHandler([&](const Packet&) { ++delivered; });
  Packet p;
  p.src = remote.primaryAddress();
  p.dst = innerAddr;
  p.proto = IpProto::Udp;
  p.payloadBytes = ByteSize::bytes(10);
  remote.sendFromLocal(std::move(p));
  sim.run();
  EXPECT_EQ(delivered, 1);
}

TEST(FabricTest, RegionOfTracksAttachments) {
  Simulator sim{7};
  Network net{sim};
  InternetFabric fabric{net};
  Node& host = fabric.attachHost("h", regions::europe(), Ipv4Address(10, 9, 0, 1));
  ASSERT_NE(fabric.regionOf(&host), nullptr);
  EXPECT_EQ(fabric.regionOf(&host)->name, "europe");
  Node& stranger = net.addNode("stranger");
  EXPECT_EQ(fabric.regionOf(&stranger), nullptr);
}

TEST(MetricsTest, AverageOverEmptyWindowIsZeroes) {
  Simulator sim{1};
  RenderPipeline pipeline{sim, devices::quest2()};
  OvrMetricsSampler metrics{sim, pipeline};
  const MetricsSample avg =
      metrics.averageOver(TimePoint::epoch(), TimePoint::epoch() + Duration::seconds(5));
  EXPECT_DOUBLE_EQ(avg.fps, 0.0);
  EXPECT_DOUBLE_EQ(avg.cpuUtilPct, 0.0);
}

TEST(SimulatorTest, HeavySchedulingRemainsOrdered) {
  // Stress: thousands of interleaved timers preserve time order.
  Simulator sim{99};
  TimePoint last = TimePoint::epoch();
  bool ordered = true;
  for (int i = 0; i < 20'000; ++i) {
    sim.scheduleAfter(Duration::micros(sim.rng().uniform(0, 1e6)), [&, i] {
      if (sim.now() < last) ordered = false;
      last = sim.now();
    });
  }
  sim.run();
  EXPECT_TRUE(ordered);
}

}  // namespace
}  // namespace msim
