// The spatial interest layer and the SoA relay hot path (DESIGN.md §12):
// grid membership and deterministic candidate ordering, distance-banded LoD
// decimation, radius culling, the angular (viewport) predicate expressed as
// an interest configuration, rate-state migration across rooms, and audit
// digests that stay byte-identical for any MSIM_THREADS when an
// interest-enabled cluster runs a drain mid-sweep.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <memory>
#include <vector>

#include "audit/sweep.hpp"
#include "avatar/codec.hpp"
#include "cluster/manager.hpp"
#include "core/seedsweep.hpp"
#include "interest/grid.hpp"
#include "interest/lod.hpp"
#include "platform/relay.hpp"

namespace msim {
namespace {

using audit::RunFingerprint;

// ------------------------------------------------------------ InterestGrid

TEST(InterestGridTest, InsertMoveRemoveTrackMembership) {
  interest::InterestGrid grid{8.0};
  EXPECT_EQ(grid.size(), 0u);
  grid.insert(3, 1003, 1.0, 1.0);
  grid.insert(7, 1007, 100.0, -50.0);
  EXPECT_EQ(grid.size(), 2u);
  EXPECT_TRUE(grid.contains(3));
  EXPECT_TRUE(grid.contains(7));
  EXPECT_FALSE(grid.contains(4));

  // Same-cell move: no boundary crossed.
  EXPECT_FALSE(grid.move(3, 1003, 2.0, 2.0));
  // Cross-cell move.
  EXPECT_TRUE(grid.move(3, 1003, 30.0, 30.0));
  EXPECT_EQ(grid.size(), 2u);

  grid.remove(3);
  EXPECT_FALSE(grid.contains(3));
  EXPECT_EQ(grid.size(), 1u);
  grid.remove(3);  // idempotent
  EXPECT_EQ(grid.size(), 1u);
}

TEST(InterestGridTest, CandidatesVisitCellsInRowColumnSlotOrder) {
  interest::InterestGrid grid{10.0};
  // Cell (0,0): slots 5 and 2; cell (1,0): slot 9; cell (0,1): slot 1.
  grid.insert(5, 1005, 1.0, 1.0);
  grid.insert(2, 1002, 3.0, 2.0);
  grid.insert(9, 1009, 12.0, 1.0);
  grid.insert(1, 1001, 2.0, 12.0);
  std::vector<std::uint32_t> seen;
  std::vector<std::uint64_t> seenIds;
  const std::size_t visited = grid.forEachCandidate(
      5.0, 5.0, 10.0, [&](std::uint32_t s, std::uint64_t id, double, double) {
        seen.push_back(s);
        seenIds.push_back(id);
      });
  EXPECT_EQ(visited, seen.size());
  // Rows (qy) outer, columns (qx) inner, slots ascending within a cell —
  // a pure function of quantized positions and slot numbers.
  EXPECT_EQ(seen, (std::vector<std::uint32_t>{2, 5, 9, 1}));
  // The co-located payload rides along with each slot.
  EXPECT_EQ(seenIds, (std::vector<std::uint64_t>{1002, 1005, 1009, 1001}));
}

TEST(InterestGridTest, QueryOnlyTouchesOverlappingCells) {
  interest::InterestGrid grid{8.0};
  grid.insert(1, 1, 0.0, 0.0);
  grid.insert(2, 2, 100.0, 0.0);
  grid.insert(3, 3, 0.0, 100.0);
  std::vector<std::uint32_t> seen;
  grid.forEachCandidate(
      0.0, 0.0, 10.0,
      [&](std::uint32_t s, std::uint64_t, double, double) { seen.push_back(s); });
  EXPECT_EQ(seen, (std::vector<std::uint32_t>{1}));
}

TEST(InterestGridTest, EmptiedCellsAreRecycled) {
  interest::InterestGrid grid{8.0};
  grid.insert(1, 1, 0.0, 0.0);
  grid.insert(2, 2, 50.0, 50.0);
  EXPECT_EQ(grid.occupiedCells(), 2u);
  grid.remove(2);
  EXPECT_EQ(grid.occupiedCells(), 1u);
  // The freed cell storage is reused for a different coordinate.
  grid.insert(3, 3, -70.0, 20.0);
  EXPECT_EQ(grid.occupiedCells(), 2u);
  std::vector<std::uint32_t> seen;
  grid.forEachCandidate(
      -70.0, 20.0, 4.0,
      [&](std::uint32_t s, std::uint64_t, double, double) { seen.push_back(s); });
  EXPECT_EQ(seen, (std::vector<std::uint32_t>{3}));
}

TEST(InterestGridTest, NegativeCoordinatesQuantizeDistinctly) {
  interest::InterestGrid grid{8.0};
  grid.insert(1, 1, -1.0, -1.0);  // cell (-1,-1)
  grid.insert(2, 2, 1.0, 1.0);    // cell (0,0)
  std::vector<std::uint32_t> seen;
  grid.forEachCandidate(
      -4.0, -4.0, 2.0,
      [&](std::uint32_t s, std::uint64_t, double, double) { seen.push_back(s); });
  EXPECT_EQ(seen, (std::vector<std::uint32_t>{1}));
}

// ---------------------------------------------------------- InterestParams

TEST(InterestParamsTest, BandLookupMatchesConfiguredRadii) {
  interest::InterestParams p;
  p.clearBands();
  p.addBand(10.0, 1);
  p.addBand(40.0, 2);
  p.addBand(-1.0, 10);
  EXPECT_EQ(p.bands, 3);
  EXPECT_EQ(p.bandFor(5.0 * 5.0), 0);
  EXPECT_EQ(p.bandFor(10.0 * 10.0), 0);  // boundary belongs to the nearer band
  EXPECT_EQ(p.bandFor(10.5 * 10.5), 1);
  EXPECT_EQ(p.bandFor(40.0 * 40.0), 1);
  EXPECT_EQ(p.bandFor(41.0 * 41.0), 2);
  EXPECT_EQ(p.bandFor(1e12), 2);
  EXPECT_EQ(p.keepEvery[2], 10u);
}

TEST(InterestParamsTest, DefaultIsOneOpenFullRateBand) {
  const interest::InterestParams p;
  EXPECT_FALSE(p.anyFilter());
  EXPECT_EQ(p.bandFor(1e18), 0);
  EXPECT_EQ(p.keepEvery[0], 1u);
}

// ------------------------------------------------- RelayRoom interest scan

Message poseMsg(std::uint64_t sender, std::uint64_t seq) {
  Message m;
  m.kind = avatarmsg::kPoseUpdate;
  m.size = ByteSize::bytes(100);
  m.senderId = sender;
  m.sequence = seq;
  return m;
}

DataSpec gridSpec() {
  DataSpec spec;
  spec.interestGrid = true;
  spec.interestCellM = 8.0;
  spec.interestRadiusM = 50.0;
  spec.interestFullRadiusM = 10.0;
  spec.interestHalfRadiusM = 40.0;
  spec.interestFarKeepEvery = 10;
  spec.queueCoefMs = 0.0;
  return spec;
}

/// Records, per receiver id, the sequences delivered to it.
struct DeliveryLog {
  std::vector<std::vector<std::uint64_t>> bySeq =
      std::vector<std::vector<std::uint64_t>>(64);
  std::vector<std::vector<TimePoint>> atTime =
      std::vector<std::vector<TimePoint>>(64);

  void attach(RelayRoom& room) {
    room.hooks().onLocalDeliver = [this, &room](std::uint64_t to,
                                                const Message& m) {
      bySeq[to].push_back(m.sequence);
      atTime[to].push_back(room.sim().now());
    };
  }
};

TEST(RelayInterestTest, ReceiversBeyondRadiusAreCulled) {
  Simulator sim{11};
  RelayRoom room{sim, gridSpec()};
  DeliveryLog log;
  log.attach(room);
  room.joinDetached(1);
  room.joinDetached(2);
  room.joinDetached(3);
  room.joinDetached(4);
  room.updatePose(1, Pose{0, 0, 0});
  room.updatePose(2, Pose{5, 0, 0});    // band 0: full rate
  // In a cell that intersects the 50 m circle (nearest corner ~43.1 m) but
  // itself ~53 m out: visited by the scan, culled by the exact circle test.
  room.updatePose(3, Pose{47.5, 23.5, 0});
  room.updatePose(4, Pose{200, 0, 0});  // far cell: never even visited

  for (std::uint64_t i = 1; i <= 4; ++i) {
    room.broadcast(1, poseMsg(1, i));
  }
  sim.run();

  EXPECT_EQ(log.bySeq[2].size(), 4u);
  EXPECT_TRUE(log.bySeq[3].empty());
  EXPECT_TRUE(log.bySeq[4].empty());
  const RelayInterestStats& stats = room.interestStats();
  EXPECT_EQ(stats.forwardedByTier[0], 4u);
  EXPECT_EQ(stats.culledByRadius, 4u);  // user 3, once per broadcast
  EXPECT_EQ(stats.culledByCell, 4u);    // user 4, once per broadcast
  EXPECT_EQ(room.interestCulledBytes().toBytes(), 8 * 100);
  EXPECT_EQ(room.forwardedBytes().toBytes(), 4 * 100);
}

TEST(RelayInterestTest, DistanceBandsDecimateAtConfiguredRates) {
  DataSpec spec = gridSpec();
  spec.interestRadiusM = 100.0;
  Simulator sim{12};
  RelayRoom room{sim, spec};
  DeliveryLog log;
  log.attach(room);
  room.joinDetached(1);
  room.joinDetached(2);
  room.joinDetached(3);
  room.updatePose(1, Pose{0, 0, 0});
  room.updatePose(2, Pose{20, 0, 0});  // half-rate band (10, 40]
  room.updatePose(3, Pose{60, 0, 0});  // trickle band: 1 in 10

  for (std::uint64_t i = 1; i <= 20; ++i) {
    room.broadcast(1, poseMsg(1, i));
  }
  sim.run();

  // Sender-side pose sequence drives every band's cadence: the half-rate
  // receiver sees exactly the even sequences, the trickle receiver every
  // tenth — not merely the right counts.
  EXPECT_EQ(log.bySeq[2],
            (std::vector<std::uint64_t>{2, 4, 6, 8, 10, 12, 14, 16, 18, 20}));
  EXPECT_EQ(log.bySeq[3], (std::vector<std::uint64_t>{10, 20}));
  const RelayInterestStats& stats = room.interestStats();
  EXPECT_EQ(stats.forwardedByTier[1], 10u);
  EXPECT_EQ(stats.forwardedByTier[2], 2u);
  EXPECT_EQ(stats.lodFiltered, 10u + 18u);
}

TEST(RelayInterestTest, UnknownPoseUsersBypassDistanceFilters) {
  Simulator sim{13};
  RelayRoom room{sim, gridSpec()};
  DeliveryLog log;
  log.attach(room);
  room.joinDetached(1);
  room.joinDetached(2);  // never reports a pose
  room.updatePose(1, Pose{0, 0, 0});

  // A receiver with no known pose cannot be culled or decimated.
  for (std::uint64_t i = 1; i <= 5; ++i) room.broadcast(1, poseMsg(1, i));
  sim.run();
  EXPECT_EQ(log.bySeq[2].size(), 5u);

  // A sender with no known pose fans out all-to-all.
  for (std::uint64_t i = 1; i <= 3; ++i) room.broadcast(2, poseMsg(2, i));
  sim.run();
  EXPECT_EQ(log.bySeq[1].size(), 3u);
}

TEST(RelayInterestTest, NonPoseTrafficKeepsTheAllToAllPath) {
  Simulator sim{14};
  RelayRoom room{sim, gridSpec()};
  DeliveryLog log;
  log.attach(room);
  room.joinDetached(1);
  room.joinDetached(2);
  room.updatePose(1, Pose{0, 0, 0});
  room.updatePose(2, Pose{500, 0, 0});  // far outside the interest radius

  Message m;
  m.kind = relaymsg::kGameState;
  m.size = ByteSize::bytes(80);
  m.senderId = 1;
  m.sequence = 1;
  room.broadcast(1, m);
  sim.run();
  EXPECT_EQ(log.bySeq[2].size(), 1u);  // game state is not interest-scoped
}

TEST(RelayInterestTest, PerFlowDeliveryStaysInOrder) {
  Simulator sim{15};
  RelayRoom room{sim, gridSpec()};
  DeliveryLog log;
  log.attach(room);
  room.joinDetached(1);
  room.joinDetached(2);
  room.updatePose(1, Pose{0, 0, 0});
  room.updatePose(2, Pose{3, 0, 0});

  for (std::uint64_t i = 1; i <= 8; ++i) room.broadcast(1, poseMsg(1, i));
  sim.run();

  ASSERT_EQ(log.bySeq[2].size(), 8u);
  for (std::size_t i = 0; i < 8; ++i) {
    EXPECT_EQ(log.bySeq[2][i], i + 1);
  }
  for (std::size_t i = 1; i < log.atTime[2].size(); ++i) {
    EXPECT_LT(log.atTime[2][i - 1], log.atTime[2][i]);
  }
}

TEST(RelayInterestTest, ViewportFilterIsAnInterestConfiguration) {
  // AltspaceVR's §6.1 wedge re-expressed as the angular predicate of the
  // interest layer: no radius, one open band, 150° width.
  DataSpec spec;
  spec.viewportFilter = true;
  spec.viewportWidthDeg = 150.0;
  spec.queueCoefMs = 0.0;
  Simulator sim{16};
  RelayRoom room{sim, spec};
  EXPECT_TRUE(room.interestParams().angular);
  EXPECT_FALSE(room.interestParams().cull());
  DeliveryLog log;
  log.attach(room);
  room.joinDetached(1);
  room.joinDetached(2);
  room.joinDetached(3);
  room.updatePose(1, Pose{10, 0, 0});
  room.updatePose(2, Pose{0, 0, 0});    // facing +x: sender in view
  room.updatePose(3, Pose{0, 5, 180});  // facing -x: sender behind

  room.broadcast(1, poseMsg(1, 1));
  sim.run();
  EXPECT_EQ(log.bySeq[2].size(), 1u);
  EXPECT_TRUE(log.bySeq[3].empty());
  EXPECT_EQ(room.interestStats().viewportFiltered, 1u);
  EXPECT_EQ(room.viewportFilteredBytes().toBytes(), 100);
}

// ----------------------------------------------- slots, reuse, membership

TEST(RelaySoATest, SlotsRecycleAndMembershipStaysExact) {
  Simulator sim{17};
  DataSpec spec;
  spec.queueCoefMs = 0.0;
  RelayRoom room{sim, spec};
  DeliveryLog log;
  log.attach(room);
  for (std::uint64_t u = 1; u <= 5; ++u) room.joinDetached(u);
  room.leave(3);
  room.joinDetached(6);  // reuses user 3's slot
  EXPECT_EQ(room.userCount(), 5u);
  EXPECT_EQ(room.userIds(),
            (std::vector<std::uint64_t>{1, 2, 4, 5, 6}));

  room.broadcast(1, poseMsg(1, 1));
  sim.run();
  EXPECT_TRUE(log.bySeq[3].empty());
  for (const std::uint64_t u : {2u, 4u, 5u, 6u}) {
    EXPECT_EQ(log.bySeq[u].size(), 1u) << "user " << u;
  }
}

TEST(RelaySoATest, RejoinKeepsSenderCadenceAndFlowOrder) {
  DataSpec spec = gridSpec();
  spec.interestRadiusM = 100.0;
  Simulator sim{18};
  RelayRoom room{sim, spec};
  DeliveryLog log;
  log.attach(room);
  room.joinDetached(1);
  room.joinDetached(2);
  room.updatePose(1, Pose{0, 0, 0});
  room.updatePose(2, Pose{20, 0, 0});  // half-rate band

  for (std::uint64_t i = 1; i <= 3; ++i) room.broadcast(1, poseMsg(1, i));
  sim.run();
  // Reconnect: the user's own pose state resets, but peers keep this
  // sender's decimation cadence — the sequence clock must not rewind.
  room.joinDetached(1);
  room.updatePose(1, Pose{0, 0, 0});
  for (std::uint64_t i = 4; i <= 6; ++i) room.broadcast(1, poseMsg(1, i));
  sim.run();

  EXPECT_EQ(log.bySeq[2], (std::vector<std::uint64_t>{2, 4, 6}));
}

TEST(RelaySoATest, EvictionSweepWorksOverSlotColumns) {
  Simulator sim{19};
  DataSpec spec;
  spec.queueCoefMs = 0.0;
  RelayRoom room{sim, spec};
  for (std::uint64_t u = 1; u <= 3; ++u) room.joinDetached(u);
  room.startEvictionSweep(Duration::seconds(15));
  // Keep user 2 alive; 1 and 3 go silent and are evicted.
  auto keepalive = std::make_unique<PeriodicTask>(
      sim, Duration::seconds(5), [&room] { room.noteActivity(2); });
  sim.runFor(Duration::seconds(30));
  EXPECT_EQ(room.userIds(), (std::vector<std::uint64_t>{2}));
}

// -------------------------------------------------- migration / snapshots

TEST(RelayMigrationTest, SnapshotCarriesRateStateAcrossRooms) {
  DataSpec spec = gridSpec();
  spec.interestRadiusM = 100.0;
  Simulator sim{20};
  RelayRoom a{sim, spec};
  RelayRoom b{sim, spec};
  DeliveryLog log;
  log.attach(a);
  log.attach(b);
  a.joinDetached(1);
  a.joinDetached(2);
  a.updatePose(1, Pose{0, 0, 0});
  a.updatePose(2, Pose{20, 0, 0});  // half-rate band

  for (std::uint64_t i = 1; i <= 3; ++i) a.broadcast(1, poseMsg(1, i));
  sim.run();

  const RelayRoomSnapshot snap = a.exportSnapshot();
  ASSERT_EQ(snap.users.size(), 2u);
  EXPECT_EQ(snap.users[0].poseSeq, 3u);  // id order: user 1 first
  b.importSnapshot(snap);
  for (const RelayUserRecord& u : snap.users) a.leave(u.id);
  EXPECT_EQ(a.userCount(), 0u);
  EXPECT_EQ(b.userCount(), 2u);

  for (std::uint64_t i = 4; i <= 6; ++i) b.broadcast(1, poseMsg(1, i));
  sim.run();

  // The half-rate cadence continues seamlessly across the handoff: even
  // sequences only, no double-delivery, no restart at 1.
  EXPECT_EQ(log.bySeq[2], (std::vector<std::uint64_t>{2, 4, 6}));
}

TEST(RelayMigrationTest, ImportPlacesMigratedPosesOnTheGrid) {
  DataSpec spec = gridSpec();
  Simulator sim{21};
  RelayRoom a{sim, spec};
  RelayRoom b{sim, spec};
  DeliveryLog log;
  log.attach(b);
  a.joinDetached(1);
  a.joinDetached(2);
  a.joinDetached(3);
  a.updatePose(1, Pose{0, 0, 0});
  a.updatePose(2, Pose{5, 0, 0});
  a.updatePose(3, Pose{400, 0, 0});

  b.importSnapshot(a.exportSnapshot());
  // The target room culls immediately: placement survived the handoff.
  b.broadcast(1, poseMsg(1, 1));
  sim.run();
  EXPECT_EQ(log.bySeq[2].size(), 1u);
  EXPECT_TRUE(log.bySeq[3].empty());
  EXPECT_EQ(b.interestStats().culledByCell, 1u);
}

// ------------------------------------- thread-invariant audited sweep

/// An interest-enabled cluster scenario: three instances, grid + viewport
/// culling, deterministic orbiting poses, a mid-run drain migrating a room
/// (with its per-LoD rate state) to another shard. Fingerprinted through
/// the kernel audit hook.
RunFingerprint auditedInterestClusterRun(std::uint64_t seed) {
  Simulator sim{seed};
  sim.enableAudit(/*recordTrail=*/true);
  cluster::ClusterConfig cfg;
  cfg.initialInstances = 3;
  cfg.policy = cluster::PlacementPolicy::LeastLoaded;
  cfg.capacity.cpuPerForwardUs = 200.0;
  cfg.capacity.cores = 1.0;
  DataSpec spec = gridSpec();
  spec.interestRadiusM = 30.0;
  spec.interestFullRadiusM = 5.0;
  spec.interestHalfRadiusM = 15.0;
  spec.interestFarKeepEvery = 4;
  spec.interestCellM = 4.0;
  spec.viewportFilter = true;
  cluster::InstanceManager mgr{sim, spec, cfg};

  mgr.setDeliverySink([&sim](std::uint32_t inst, std::uint64_t toUser,
                             const Message& m) {
    sim.auditNote((static_cast<std::uint64_t>(inst) << 48) ^ toUser);
    sim.auditNote(m.sequence);
  });

  const int users = 10;
  for (std::uint64_t u = 1; u <= users; ++u) {
    mgr.joinUser(u, regions::usEast());
  }
  std::vector<std::uint64_t> seqs(users + 1, 0);
  std::vector<std::uint64_t> ticks(users + 1, 0);
  std::vector<std::unique_ptr<PeriodicTask>> senders;
  for (std::uint64_t u = 1; u <= users; ++u) {
    senders.push_back(std::make_unique<PeriodicTask>(
        sim, Duration::millis(100), [&mgr, &seqs, &ticks, u] {
          if (RelayRoom* room = mgr.roomOf(u)) {
            // Deterministic orbit: users circle at distinct radii, so pairs
            // wander across band boundaries and cells as the run advances.
            const double phase =
                static_cast<double>(ticks[u]++) * 0.05 + static_cast<double>(u);
            const double radius = 2.0 + 2.5 * static_cast<double>(u);
            room->updatePose(u, Pose{radius * std::cos(phase),
                                     radius * std::sin(phase),
                                     std::fmod(phase * 57.0, 360.0)});
            Message m = poseMsg(u, ++seqs[u]);
            m.pose = Message::PoseHint{0, 0, 0};
            room->broadcast(u, m);
          }
        }));
  }
  sim.schedule(TimePoint::epoch() + Duration::seconds(2),
               [&mgr] { mgr.drain(2); });
  sim.runFor(Duration::seconds(4));
  return sim.auditFingerprint();
}

TEST(InterestAuditSweepTest, DigestsIdenticalAcrossThreadCounts) {
  const auto seeds = defaultSeeds(3);
  for (const unsigned threads : {2u, 8u}) {
    const auto report = audit::verifyThreadInvariance(
        seeds, auditedInterestClusterRun, 1, threads);
    EXPECT_TRUE(report.identical) << report.describe();
  }
}

TEST(InterestAuditSweepTest, SweepActuallyExercisesTheInterestScan) {
  const RunFingerprint fp = auditedInterestClusterRun(4242);
  EXPECT_GT(fp.events, 100u);
}

}  // namespace
}  // namespace msim
