// Parameterized property sweeps over the substrates: geography metrics,
// netem rate conformance, TCP window scaling, and per-platform calibration
// identities.

#include <gtest/gtest.h>

#include "core/experiments.hpp"
#include "geo/geo.hpp"

namespace msim {
namespace {

// ----------------------------------------------------- geography properties

class RegionPairs
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(RegionPairs, DistanceAndDelayAreMetricLike) {
  const auto& regions = regions::all();
  const Region& a = regions[static_cast<std::size_t>(std::get<0>(GetParam()))];
  const Region& b = regions[static_cast<std::size_t>(std::get<1>(GetParam()))];

  // Symmetry.
  EXPECT_NEAR(greatCircleKm(a.location, b.location),
              greatCircleKm(b.location, a.location), 1e-6);
  EXPECT_EQ(propagationDelay(a.location, b.location),
            propagationDelay(b.location, a.location));

  if (a.name == b.name) {
    EXPECT_NEAR(greatCircleKm(a.location, b.location), 0.0, 1e-9);
    return;
  }
  // Positivity and physical sanity: slower than light-in-fiber, faster than
  // half the speed of a carrier pigeon.
  const double km = greatCircleKm(a.location, b.location);
  const double ms = propagationDelay(a.location, b.location).toMillis();
  EXPECT_GT(ms, km / 200'000.0 * 1000.0 * 0.99);  // >= fiber floor
  EXPECT_LT(ms, km / 200'000.0 * 1000.0 * 2.5);   // bounded inflation

  // Triangle inequality through every third region (inflation >= the
  // long-haul factor keeps this true).
  for (const Region& c : regions) {
    const double direct = propagationDelay(a.location, b.location).toMillis();
    const double viaC = propagationDelay(a.location, c.location).toMillis() +
                        propagationDelay(c.location, b.location).toMillis();
    EXPECT_LE(direct, viaC + 1e-9)
        << a.name << "->" << b.name << " via " << c.name;
  }
}

INSTANTIATE_TEST_SUITE_P(AllPairs, RegionPairs,
                         ::testing::Combine(::testing::Range(0, 5),
                                            ::testing::Range(0, 5)));

// --------------------------------------------------- netem rate conformance

class ShaperRates : public ::testing::TestWithParam<double> {};

TEST_P(ShaperRates, ShapedStreamConformsToRate) {
  const double mbps = GetParam();
  Simulator sim{5};
  Network net{sim};
  Node& a = net.addNode("a");
  Node& b = net.addNode("b");
  a.addAddress(Ipv4Address(10, 0, 0, 1));
  b.addAddress(Ipv4Address(10, 0, 0, 2));
  auto [da, db] = Link::connect(a, b, LinkConfig{});
  a.setDefaultRoute(da);
  b.setDefaultRoute(db);
  NetemConfig cfg;
  cfg.rateLimit = DataRate::mbps(mbps);
  cfg.shaperBuffer = ByteSize::bytes(static_cast<std::int64_t>(mbps * 1e6 / 8 * 0.3));
  da.netem().configure(cfg);

  UdpSocket server{b, 5000};
  UdpSocket client{a};
  std::int64_t received = 0;
  server.onReceive([&](const Packet& p, const Endpoint&) {
    received += p.wireSize().toBytes();
  });
  // Saturating offered load: 4x the shaped rate.
  PeriodicTask sender{sim, Duration::millis(5), [&] {
    client.sendTo(Endpoint{b.primaryAddress(), 5000},
                  ByteSize::bytes(static_cast<std::int64_t>(mbps * 1e6 / 8 * 0.02)));
  }};
  sim.runFor(Duration::seconds(30));
  const double gotMbps = received * 8.0 / 30.0 / 1e6;
  EXPECT_LE(gotMbps, mbps * 1.05);
  EXPECT_GE(gotMbps, mbps * 0.80);
}

INSTANTIATE_TEST_SUITE_P(RateGrid, ShaperRates,
                         ::testing::Values(0.1, 0.3, 0.5, 1.0, 2.0, 5.0));

// -------------------------------------------------------- TCP window scaling

class TcpWindows : public ::testing::TestWithParam<int> {};

TEST_P(TcpWindows, ThroughputTracksWindowOverRtt) {
  const std::uint32_t window = 1u << GetParam();
  Simulator sim{5};
  Network net{sim};
  Node& a = net.addNode("a");
  Node& b = net.addNode("b");
  a.addAddress(Ipv4Address(10, 0, 0, 1));
  b.addAddress(Ipv4Address(10, 0, 0, 2));
  LinkConfig link;
  link.rate = DataRate::gbps(1);
  link.delay = Duration::millis(25);  // 50 ms RTT
  auto [da, db] = Link::connect(a, b, link);
  a.setDefaultRoute(da);
  b.setDefaultRoute(db);

  TcpConfig cfg;
  cfg.receiveWindow = window;
  TcpListener listener{b, 443, cfg};
  std::int64_t got = 0;
  listener.onAccept([&](const std::shared_ptr<TcpSocket>& s) {
    s->onMessage([&](const Message& m) { got += m.size.toBytes(); });
  });
  auto client = TcpSocket::create(a, cfg);
  client->connect(Endpoint{b.primaryAddress(), 443}, nullptr);
  Message m;
  m.kind = "bulk";
  m.size = ByteSize::megabytes(2);
  client->send(std::move(m));
  const TimePoint start = sim.now();
  sim.run();
  EXPECT_EQ(got, 2'000'000);
  const double secs = (sim.now() - start).toSeconds();
  const double bound = static_cast<double>(window) / 0.050;  // bytes/sec
  // Cannot beat window/RTT (modulo handshake rounding).
  EXPECT_GE(secs, 2'000'000.0 / bound * 0.8);
}

INSTANTIATE_TEST_SUITE_P(WindowGrid, TcpWindows,
                         ::testing::Values(14, 16, 18, 20));  // 16 KB..1 MB

// ------------------------------------- per-platform calibration identities

class PlatformCalibration : public ::testing::TestWithParam<int> {};

TEST_P(PlatformCalibration, AvatarWireRateMatchesSpecFormula) {
  const PlatformSpec spec =
      platforms::allFive()[static_cast<std::size_t>(GetParam())];
  const TwoUserThroughputRow row = runTwoUserThroughput(spec, 2);
  // Predicted on-wire avatar rate from the spec (see catalog.cpp notes).
  const double overhead = spec.data.protocol == DataProtocol::Udp
                              ? wire::kEthIpUdp
                              : wire::kEthIpTcp + wire::kTlsRecord;
  const double predictedKbps =
      spec.avatar.updateRateHz *
      (static_cast<double>(spec.avatar.bytesPerUpdate.toBytes()) + overhead) *
      8.0 / 1000.0;
  EXPECT_NEAR(row.avatarKbps, predictedKbps, 0.08 * predictedKbps + 1.0)
      << spec.name;
}

TEST_P(PlatformCalibration, UplinkMatchesDownlinkExceptWorlds) {
  const PlatformSpec spec =
      platforms::allFive()[static_cast<std::size_t>(GetParam())];
  const TwoUserThroughputRow row = runTwoUserThroughput(spec, 2);
  if (spec.name == "Worlds") {
    EXPECT_GT(row.upKbps, 1.5 * row.downKbps);
  } else {
    EXPECT_NEAR(row.upKbps, row.downKbps, 0.08 * row.downKbps);
  }
}

INSTANTIATE_TEST_SUITE_P(AllPlatforms, PlatformCalibration,
                         ::testing::Range(0, 5));

}  // namespace
}  // namespace msim
