// Unit tests for the net substrate: addressing, links, queues, routing,
// TTL/ICMP, netem, capture taps.

#include <gtest/gtest.h>

#include "net/netem.hpp"
#include "net/node.hpp"
#include "net/packet.hpp"

namespace msim {
namespace {

Packet makeUdpPacket(Ipv4Address src, Ipv4Address dst, std::int64_t bytes) {
  Packet p;
  p.uid = nextPacketUid();
  p.src = src;
  p.dst = dst;
  p.proto = IpProto::Udp;
  p.overheadBytes = wire::kEthIpUdp;
  p.payloadBytes = ByteSize::bytes(bytes);
  return p;
}

// ------------------------------------------------------------------ Address

TEST(AddressTest, DottedQuadFormat) {
  EXPECT_EQ(Ipv4Address(10, 1, 2, 3).toString(), "10.1.2.3");
  EXPECT_EQ(Ipv4Address{}.toString(), "0.0.0.0");
  EXPECT_TRUE(Ipv4Address{}.isUnspecified());
}

TEST(AddressTest, PrefixMatching) {
  const Ipv4Address addr{10, 1, 2, 3};
  EXPECT_TRUE(addr.inPrefix(Ipv4Address(10, 1, 0, 0), 16));
  EXPECT_TRUE(addr.inPrefix(Ipv4Address(10, 1, 2, 3), 32));
  EXPECT_FALSE(addr.inPrefix(Ipv4Address(10, 2, 0, 0), 16));
  EXPECT_TRUE(addr.inPrefix(Ipv4Address{}, 0));  // default route matches all
}

TEST(AddressTest, EndpointEqualityAndHash) {
  const Endpoint a{Ipv4Address(1, 2, 3, 4), 80};
  const Endpoint b{Ipv4Address(1, 2, 3, 4), 80};
  const Endpoint c{Ipv4Address(1, 2, 3, 4), 81};
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
  EXPECT_EQ(a.toString(), "1.2.3.4:80");
}

// ------------------------------------------------------------------- Packet

TEST(PacketTest, WireSizeIncludesOverhead) {
  const auto p = makeUdpPacket(Ipv4Address(1, 0, 0, 1), Ipv4Address(1, 0, 0, 2), 100);
  EXPECT_EQ(p.wireSize().toBytes(), 100 + wire::kEthIpUdp);
}

TEST(PacketTest, HeaderVariantAccess) {
  Packet p;
  EXPECT_EQ(p.tcp(), nullptr);
  EXPECT_EQ(p.icmp(), nullptr);
  p.l4 = TcpHeader{};
  EXPECT_NE(p.tcp(), nullptr);
  p.l4 = IcmpHeader{};
  EXPECT_NE(p.icmp(), nullptr);
}

// ----------------------------------------------------------- link transport

class TwoNodeFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    a = &net.addNode("a");
    b = &net.addNode("b");
    a->addAddress(Ipv4Address(10, 0, 0, 1));
    b->addAddress(Ipv4Address(10, 0, 0, 2));
    LinkConfig cfg;
    cfg.rate = DataRate::mbps(8);           // 1 byte per microsecond
    cfg.delay = Duration::millis(1);
    auto [devA, devB] = Link::connect(*a, *b, cfg);
    a->setDefaultRoute(devA);
    b->setDefaultRoute(devB);
    this->devA = &devA;
    this->devB = &devB;
  }

  Simulator sim{1};
  Network net{sim};
  Node* a{};
  Node* b{};
  NetDevice* devA{};
  NetDevice* devB{};
};

TEST_F(TwoNodeFixture, DeliversWithSerializationPlusPropagation) {
  TimePoint arrival;
  b->setLocalHandler([&](const Packet&) { arrival = sim.now(); });
  // 1000 B payload + 42 B overhead = 1042 B -> 1.042 ms at 8 Mbps, + 1 ms prop.
  a->sendFromLocal(makeUdpPacket(a->primaryAddress(), b->primaryAddress(), 1000));
  sim.run();
  EXPECT_NEAR(arrival.toMillis(), 1.042 + 1.0, 1e-6);
}

TEST_F(TwoNodeFixture, BackToBackPacketsSerialize) {
  std::vector<double> arrivals;
  b->setLocalHandler([&](const Packet&) { arrivals.push_back(sim.now().toMillis()); });
  for (int i = 0; i < 3; ++i) {
    a->sendFromLocal(makeUdpPacket(a->primaryAddress(), b->primaryAddress(), 958));
  }
  sim.run();
  ASSERT_EQ(arrivals.size(), 3u);
  // 1000 B wire each -> 1 ms serialization; arrivals 1 ms apart.
  EXPECT_NEAR(arrivals[1] - arrivals[0], 1.0, 1e-6);
  EXPECT_NEAR(arrivals[2] - arrivals[1], 1.0, 1e-6);
}

TEST_F(TwoNodeFixture, QueueOverflowDropsTail) {
  // Shrink the queue: reconnect with a tiny limit.
  LinkConfig cfg;
  cfg.rate = DataRate::kbps(80);  // slow: 100 ms per 1000 B packet
  cfg.delay = Duration::millis(1);
  cfg.queueLimit = ByteSize::bytes(2100);  // about two packets
  auto [devA2, devB2] = Link::connect(*a, *b, cfg);
  a->setDefaultRoute(devA2);
  int received = 0;
  b->setLocalHandler([&](const Packet&) { ++received; });
  for (int i = 0; i < 10; ++i) {
    a->sendFromLocal(makeUdpPacket(a->primaryAddress(), b->primaryAddress(), 958));
  }
  sim.run();
  EXPECT_LT(received, 10);
  EXPECT_GT(devA2.queueDrops(), 0u);
  EXPECT_EQ(received + static_cast<int>(devA2.queueDrops()), 10);
}

TEST_F(TwoNodeFixture, LoopbackDeliversLocally) {
  int received = 0;
  a->setLocalHandler([&](const Packet&) { ++received; });
  a->sendFromLocal(makeUdpPacket(a->primaryAddress(), a->primaryAddress(), 10));
  sim.run();
  EXPECT_EQ(received, 1);
}

TEST_F(TwoNodeFixture, UnroutableCountsDrop) {
  Node& c = net.addNode("c");
  c.addAddress(Ipv4Address(10, 0, 0, 3));
  c.sendFromLocal(makeUdpPacket(c.primaryAddress(), a->primaryAddress(), 10));
  sim.run();
  EXPECT_EQ(c.unroutableDrops(), 1u);
}

TEST_F(TwoNodeFixture, TapsSeeBothDirections) {
  int egress = 0;
  int ingress = 0;
  devA->addTap([&](const Packet&, TapDir dir) {
    (dir == TapDir::Egress ? egress : ingress) += 1;
  });
  b->setLocalHandler([](const Packet&) {});
  a->sendFromLocal(makeUdpPacket(a->primaryAddress(), b->primaryAddress(), 100));
  sim.run();
  EXPECT_EQ(egress, 1);
  EXPECT_EQ(ingress, 0);  // no reply yet
  b->sendFromLocal(makeUdpPacket(b->primaryAddress(), a->primaryAddress(), 100));
  a->setLocalHandler([](const Packet&) {});
  sim.run();
  EXPECT_EQ(ingress, 1);
}

// ------------------------------------------------------------------ routing

TEST(RoutingTest, LongestPrefixWins) {
  Simulator sim;
  Network net{sim};
  Node& r = net.addNode("r");
  Node& n1 = net.addNode("n1");
  Node& n2 = net.addNode("n2");
  n1.addAddress(Ipv4Address(10, 1, 0, 1));
  n2.addAddress(Ipv4Address(10, 1, 2, 1));
  LinkConfig cfg;
  auto [r1, n1d] = Link::connect(r, n1, cfg);
  auto [r2, n2d] = Link::connect(r, n2, cfg);
  r.addPrefixRoute(Ipv4Address(10, 1, 0, 0), 16, r1);
  r.addPrefixRoute(Ipv4Address(10, 1, 2, 0), 24, r2);
  EXPECT_EQ(r.route(Ipv4Address(10, 1, 0, 5)), &r1);
  EXPECT_EQ(r.route(Ipv4Address(10, 1, 2, 5)), &r2);
  EXPECT_EQ(r.route(Ipv4Address(9, 9, 9, 9)), nullptr);
}

TEST(RoutingTest, MultiHopForwardingDecrementsTtl) {
  Simulator sim;
  Network net{sim};
  Node& src = net.addNode("src");
  Node& r1 = net.addNode("r1");
  Node& r2 = net.addNode("r2");
  Node& dst = net.addNode("dst");
  src.addAddress(Ipv4Address(10, 0, 0, 1));
  dst.addAddress(Ipv4Address(10, 0, 0, 9));
  LinkConfig cfg;
  auto [s1, r1a] = Link::connect(src, r1, cfg);
  auto [r1b, r2a] = Link::connect(r1, r2, cfg);
  auto [r2b, d1] = Link::connect(r2, dst, cfg);
  src.setDefaultRoute(s1);
  r1.setDefaultRoute(r1b);
  r2.setDefaultRoute(r2b);
  dst.setDefaultRoute(d1);

  std::uint8_t ttlAtArrival = 0;
  dst.setLocalHandler([&](const Packet& p) { ttlAtArrival = p.ttl; });
  auto p = makeUdpPacket(src.primaryAddress(), dst.primaryAddress(), 100);
  p.ttl = 64;
  src.sendFromLocal(std::move(p));
  sim.run();
  EXPECT_EQ(ttlAtArrival, 62);  // two forwarding hops
}

TEST(RoutingTest, TtlExpiryGeneratesTimeExceeded) {
  Simulator sim;
  Network net{sim};
  Node& src = net.addNode("src");
  Node& r1 = net.addNode("r1");
  Node& dst = net.addNode("dst");
  src.addAddress(Ipv4Address(10, 0, 0, 1));
  r1.addAddress(Ipv4Address(10, 0, 0, 5));
  dst.addAddress(Ipv4Address(10, 0, 0, 9));
  LinkConfig cfg;
  auto [s1, r1a] = Link::connect(src, r1, cfg);
  auto [r1b, d1] = Link::connect(r1, dst, cfg);
  src.setDefaultRoute(s1);
  r1.setDefaultRoute(r1b);
  r1.addHostRoute(src.primaryAddress(), r1a);  // reverse path for ICMP
  dst.setDefaultRoute(d1);

  Ipv4Address reporter;
  IcmpType type{};
  Ipv4Address reportedDst;
  src.addIcmpListener([&](const Packet& p) {
    reporter = p.src;
    if (const auto* h = p.icmp()) {
      type = h->type;
      reportedDst = h->originalDst;
    }
  });
  auto p = makeUdpPacket(src.primaryAddress(), dst.primaryAddress(), 40);
  p.ttl = 1;  // expires at r1
  p.dstPort = 33434;
  src.sendFromLocal(std::move(p));
  sim.run();
  EXPECT_EQ(reporter, r1.primaryAddress());
  EXPECT_EQ(type, IcmpType::TimeExceeded);
  EXPECT_EQ(reportedDst, dst.primaryAddress());
}

TEST(RoutingTest, IcmpEchoRoundTrip) {
  Simulator sim;
  Network net{sim};
  Node& a = net.addNode("a");
  Node& b = net.addNode("b");
  a.addAddress(Ipv4Address(10, 0, 0, 1));
  b.addAddress(Ipv4Address(10, 0, 0, 2));
  LinkConfig cfg;
  cfg.delay = Duration::millis(5);
  auto [da, db] = Link::connect(a, b, cfg);
  a.setDefaultRoute(da);
  b.setDefaultRoute(db);

  TimePoint replyAt;
  bool gotReply = false;
  a.addIcmpListener([&](const Packet& p) {
    if (const auto* h = p.icmp(); h != nullptr && h->type == IcmpType::EchoReply) {
      gotReply = true;
      replyAt = sim.now();
    }
  });
  Packet probe;
  probe.src = a.primaryAddress();
  probe.dst = b.primaryAddress();
  probe.proto = IpProto::Icmp;
  probe.overheadBytes = wire::kEthIpIcmp;
  probe.payloadBytes = ByteSize::bytes(56);
  probe.l4 = IcmpHeader{IcmpType::EchoRequest, 7, 1, {}, 0};
  a.sendFromLocal(std::move(probe));
  sim.run();
  EXPECT_TRUE(gotReply);
  EXPECT_GE(replyAt.toMillis(), 10.0);  // two propagation legs
}

TEST(RoutingTest, EchoDisabledStaysSilent) {
  Simulator sim;
  Network net{sim};
  Node& a = net.addNode("a");
  Node& b = net.addNode("b");
  a.addAddress(Ipv4Address(10, 0, 0, 1));
  b.addAddress(Ipv4Address(10, 0, 0, 2));
  b.setIcmpEchoEnabled(false);
  auto [da, db] = Link::connect(a, b, LinkConfig{});
  a.setDefaultRoute(da);
  b.setDefaultRoute(db);
  bool gotReply = false;
  a.addIcmpListener([&](const Packet&) { gotReply = true; });
  Packet probe;
  probe.src = a.primaryAddress();
  probe.dst = b.primaryAddress();
  probe.proto = IpProto::Icmp;
  probe.l4 = IcmpHeader{IcmpType::EchoRequest, 1, 1, {}, 0};
  a.sendFromLocal(std::move(probe));
  sim.run();
  EXPECT_FALSE(gotReply);
}

TEST(RoutingTest, AnycastPicksPerVantageReplica) {
  // Two replicas own the same address; routing decides which one answers.
  Simulator sim;
  Network net{sim};
  Node& client = net.addNode("client");
  Node& nearRep = net.addNode("near");
  Node& farRep = net.addNode("far");
  const Ipv4Address anycast{100, 0, 0, 1};
  client.addAddress(Ipv4Address(10, 0, 0, 1));
  nearRep.addAddress(anycast);
  farRep.addAddress(anycast);
  LinkConfig nearCfg;
  nearCfg.delay = Duration::millis(1);
  LinkConfig farCfg;
  farCfg.delay = Duration::millis(40);
  auto [cn, nc] = Link::connect(client, nearRep, nearCfg);
  auto [cf, fc] = Link::connect(client, farRep, farCfg);
  client.addHostRoute(anycast, cn);  // routing prefers the near replica
  nearRep.setDefaultRoute(nc);
  farRep.setDefaultRoute(fc);

  TimePoint replyAt;
  client.addIcmpListener([&](const Packet&) { replyAt = sim.now(); });
  Packet probe;
  probe.src = client.primaryAddress();
  probe.dst = anycast;
  probe.proto = IpProto::Icmp;
  probe.l4 = IcmpHeader{IcmpType::EchoRequest, 1, 1, {}, 0};
  client.sendFromLocal(std::move(probe));
  sim.run();
  EXPECT_LT(replyAt.toMillis(), 5.0);  // answered by the near replica
}

// -------------------------------------------------------------------- netem

TEST(NetemTest, TransparentByDefault) {
  Netem netem;
  Rng rng{1};
  const auto v = netem.apply(TimePoint::epoch(), ByteSize::bytes(1000), rng);
  EXPECT_FALSE(v.drop);
  EXPECT_TRUE(v.holdFor.isZero());
}

TEST(NetemTest, FullLossDropsEverything) {
  Netem netem;
  NetemConfig cfg;
  cfg.lossRate = 1.0;
  netem.configure(cfg);
  Rng rng{1};
  for (int i = 0; i < 50; ++i) {
    EXPECT_TRUE(netem.apply(TimePoint::epoch(), ByteSize::bytes(100), rng).drop);
  }
  EXPECT_EQ(netem.droppedByLoss(), 50u);
}

TEST(NetemTest, PartialLossApproximatesRate) {
  Netem netem;
  NetemConfig cfg;
  cfg.lossRate = 0.2;
  netem.configure(cfg);
  Rng rng{42};
  int drops = 0;
  for (int i = 0; i < 10000; ++i) {
    drops += netem.apply(TimePoint::epoch(), ByteSize::bytes(100), rng).drop ? 1 : 0;
  }
  EXPECT_NEAR(drops / 10000.0, 0.2, 0.02);
}

TEST(NetemTest, DelayAddsHold) {
  Netem netem;
  NetemConfig cfg;
  cfg.delay = Duration::millis(100);
  netem.configure(cfg);
  Rng rng{1};
  const auto v = netem.apply(TimePoint::epoch(), ByteSize::bytes(100), rng);
  EXPECT_FALSE(v.drop);
  EXPECT_EQ(v.holdFor.toMillis(), 100.0);
}

TEST(NetemTest, RateLimitSpacesPackets) {
  Netem netem;
  NetemConfig cfg;
  cfg.rateLimit = DataRate::mbps(1);  // 1000 B -> 8 ms
  netem.configure(cfg);
  Rng rng{1};
  const auto t0 = TimePoint::epoch();
  const auto v1 = netem.apply(t0, ByteSize::bytes(1000), rng);
  const auto v2 = netem.apply(t0, ByteSize::bytes(1000), rng);
  EXPECT_NEAR(v1.holdFor.toMillis(), 8.0, 1e-6);
  EXPECT_NEAR(v2.holdFor.toMillis(), 16.0, 1e-6);
}

TEST(NetemTest, ShaperBufferOverflowDrops) {
  Netem netem;
  NetemConfig cfg;
  cfg.rateLimit = DataRate::kbps(100);
  cfg.shaperBuffer = ByteSize::bytes(3000);
  netem.configure(cfg);
  Rng rng{1};
  int drops = 0;
  for (int i = 0; i < 50; ++i) {
    drops += netem.apply(TimePoint::epoch(), ByteSize::bytes(1000), rng).drop ? 1 : 0;
  }
  EXPECT_GT(drops, 0);
  EXPECT_EQ(netem.droppedByShaper(), static_cast<std::uint64_t>(drops));
}

TEST(NetemTest, JitterBoundsHold) {
  Netem netem;
  NetemConfig cfg;
  cfg.delay = Duration::millis(50);
  cfg.jitter = Duration::millis(10);
  netem.configure(cfg);
  Rng rng{9};
  for (int i = 0; i < 500; ++i) {
    const auto v = netem.apply(TimePoint::epoch(), ByteSize::bytes(100), rng);
    EXPECT_GE(v.holdFor.toMillis(), 40.0 - 1e-9);
    EXPECT_LE(v.holdFor.toMillis(), 60.0 + 1e-9);
  }
}

TEST(NetemTest, ResetClearsState) {
  Netem netem;
  NetemConfig cfg;
  cfg.delay = Duration::millis(100);
  netem.configure(cfg);
  netem.reset();
  Rng rng{1};
  EXPECT_TRUE(netem.apply(TimePoint::epoch(), ByteSize::bytes(1), rng).holdFor.isZero());
}

TEST(NetemDeviceTest, LossyLinkDropsTraffic) {
  Simulator sim{7};
  Network net{sim};
  Node& a = net.addNode("a");
  Node& b = net.addNode("b");
  a.addAddress(Ipv4Address(10, 0, 0, 1));
  b.addAddress(Ipv4Address(10, 0, 0, 2));
  auto [da, db] = Link::connect(a, b, LinkConfig{});
  a.setDefaultRoute(da);
  b.setDefaultRoute(db);
  NetemConfig cfg;
  cfg.lossRate = 0.5;
  da.netem().configure(cfg);
  int received = 0;
  b.setLocalHandler([&](const Packet&) { ++received; });
  for (int i = 0; i < 200; ++i) {
    a.sendFromLocal(makeUdpPacket(a.primaryAddress(), b.primaryAddress(), 100));
  }
  sim.run();
  EXPECT_GT(received, 50);
  EXPECT_LT(received, 150);
}

}  // namespace
}  // namespace msim
