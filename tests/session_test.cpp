// The src/session subsystem: connection state machine, token auth, ping
// liveness, reconnect backoff, channel recovery — and its coupling to the
// cluster (gateway reconnect placement) and the platform control tier
// (ControlSessionGate token round trips).

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "audit/sweep.hpp"
#include "cluster/manager.hpp"
#include "cluster/sessions.hpp"
#include "core/seedsweep.hpp"
#include "core/testbed.hpp"
#include "platform/session_gate.hpp"
#include "session/hub.hpp"

namespace msim::session {
namespace {

constexpr std::uint64_t kSecret = 0xfeedfacecafeULL;

/// A hub with no cluster behind it: every accept binds to shard 0.
struct BareHub {
  Simulator sim;
  SessionHub hub;
  explicit BareHub(std::uint64_t seed, Duration ttl = Duration::minutes(10),
                   HubConfig hc = {})
      : sim{seed}, hub{sim, TokenAuthority{kSecret, ttl}, hc} {}
};

/// Fast client tuning so lifecycle tests stay in simulated seconds.
SessionConfig fastSession() {
  SessionConfig cfg;
  cfg.pingInterval = Duration::seconds(2);
  cfg.maxPingDelay = Duration::seconds(1);
  cfg.minReconnectDelay = Duration::millis(100);
  cfg.maxReconnectDelay = Duration::seconds(2);
  return cfg;
}

// ------------------------------------------------------------ history ring

TEST(HistoryRingTest, ReplaysOldestFirstAndReportsWindow) {
  HistoryRing ring{4};
  EXPECT_FALSE(ring.canRecoverFrom(0));  // empty: nothing to replay
  for (std::uint64_t s = 1; s <= 3; ++s) ring.push(ChannelMessage{s, s * 10, 64});
  EXPECT_EQ(ring.oldestSeq(), 1u);
  EXPECT_TRUE(ring.canRecoverFrom(0));
  std::vector<std::uint64_t> seqs;
  ring.replaySince(1, [&](const ChannelMessage& m) { seqs.push_back(m.seq); });
  ASSERT_EQ(seqs.size(), 2u);
  EXPECT_EQ(seqs[0], 2u);
  EXPECT_EQ(seqs[1], 3u);
}

TEST(HistoryRingTest, OverflowEvictsOldest) {
  HistoryRing ring{4};
  for (std::uint64_t s = 1; s <= 10; ++s) ring.push(ChannelMessage{s, s, 32});
  EXPECT_EQ(ring.oldestSeq(), 7u);
  EXPECT_FALSE(ring.canRecoverFrom(3));  // 4..6 already evicted
  EXPECT_TRUE(ring.canRecoverFrom(6));   // 7..10 still held
}

TEST(ChannelBrokerTest, ResumeWithinWindowReplaysExactSuffix) {
  ChannelBroker broker{8};
  broker.subscribe(5, /*sessionId=*/1);
  for (int i = 0; i < 6; ++i) {
    broker.publish(5, 100 + i, 64, [](std::uint32_t, const ChannelMessage&) {});
  }
  broker.unsubscribeAll(1);
  std::vector<std::uint64_t> seqs;
  const auto res = broker.resume(
      5, 1, /*lastSeq=*/2,
      [&](std::uint32_t, const ChannelMessage& m) { seqs.push_back(m.seq); });
  EXPECT_TRUE(res.recovered);
  EXPECT_EQ(res.headSeq, 6u);
  ASSERT_EQ(seqs.size(), 4u);  // 3,4,5,6 in order
  for (std::size_t i = 0; i < seqs.size(); ++i) EXPECT_EQ(seqs[i], 3 + i);
}

TEST(ChannelBrokerTest, ResumeBeyondWindowIsFullRejoin) {
  ChannelBroker broker{4};
  for (int i = 0; i < 20; ++i) {
    broker.publish(9, i, 64, [](std::uint32_t, const ChannelMessage&) {});
  }
  bool replayed = false;
  const auto res = broker.resume(
      9, 2, /*lastSeq=*/1,
      [&](std::uint32_t, const ChannelMessage&) { replayed = true; });
  EXPECT_FALSE(res.recovered);
  EXPECT_FALSE(replayed);
  EXPECT_EQ(res.headSeq, 20u);
}

// ------------------------------------------------------------- token auth

TEST(TokenAuthorityTest, IssueValidateExpiryAndForgery) {
  TokenAuthority auth{kSecret, Duration::seconds(10)};
  const TimePoint t0 = TimePoint::epoch();
  Token t = auth.issue(7, t0);
  EXPECT_TRUE(auth.validate(t, t0 + Duration::seconds(5)));
  EXPECT_FALSE(auth.validate(t, t0 + Duration::seconds(10)));  // expired
  Token forged = t;
  forged.userId = 8;  // claims changed, signature stale
  EXPECT_FALSE(auth.validate(forged, t0 + Duration::seconds(5)));
  EXPECT_EQ(auth.rejectedExpired(), 1u);
  EXPECT_EQ(auth.rejectedForged(), 1u);
}

// ------------------------------------------------------- connection machine

TEST(SessionTest, ConnectWalksDisconnectedConnectingConnected) {
  BareHub b{1};
  Session s{b.hub, fastSession(), 42, regions::usEast()};
  std::vector<ConnectionState> states;
  s.setOnStateChange(
      [&](Session&, ConnectionState st) { states.push_back(st); });
  s.connect();
  b.sim.runFor(Duration::seconds(1));
  ASSERT_EQ(states.size(), 2u);
  EXPECT_EQ(states[0], ConnectionState::Connecting);
  EXPECT_EQ(states[1], ConnectionState::Connected);
  EXPECT_EQ(s.shard(), 0);
  EXPECT_EQ(s.stats().connects, 1u);
  EXPECT_EQ(b.hub.connectedCount(), 1u);
}

TEST(SessionTest, SilentShardDeathIsDiscoveredByPingDeadline) {
  BareHub b{2};
  Session s{b.hub, fastSession(), 42, regions::usEast()};
  s.connect();
  b.sim.runFor(Duration::seconds(1));
  ASSERT_EQ(s.state(), ConnectionState::Connected);

  EXPECT_EQ(b.hub.markShardDead(0), 1u);
  // Nothing told the client: it is still nominally Connected until a ping
  // goes unanswered past maxPingDelay.
  EXPECT_EQ(s.state(), ConnectionState::Connected);
  b.sim.runFor(Duration::seconds(8));
  EXPECT_EQ(s.state(), ConnectionState::Connected);  // reconnected by now
  EXPECT_GE(s.stats().pingTimeouts, 1u);
  EXPECT_EQ(s.stats().reconnects, 1u);
  EXPECT_EQ(b.hub.stats().shardEvictions, 1u);
}

TEST(SessionTest, RefreshBeforeExpiryKeepsTheSessionAlive) {
  BareHub b{3, Duration::seconds(5)};
  SessionConfig cfg = fastSession();
  cfg.tokenRefreshLead = Duration::seconds(2);
  Session s{b.hub, cfg, 42, regions::usEast()};
  s.connect();
  b.sim.runFor(Duration::seconds(12));
  EXPECT_EQ(s.state(), ConnectionState::Connected);
  EXPECT_GE(s.stats().tokenRefreshes, 2u);
  EXPECT_EQ(s.stats().serverDisconnects, 0u);
  EXPECT_EQ(b.hub.stats().expiries, 0u);
  EXPECT_GE(b.hub.stats().refreshes, 2u);
}

TEST(SessionTest, ExpiryWithoutRefreshForcesReauthReconnect) {
  BareHub b{4, Duration::seconds(3)};
  SessionConfig cfg = fastSession();
  cfg.tokenRefreshLead = Duration::zero();  // never refresh
  Session s{b.hub, cfg, 42, regions::usEast()};
  s.connect();
  b.sim.runFor(Duration::seconds(10));
  EXPECT_EQ(s.state(), ConnectionState::Connected);
  EXPECT_GE(b.hub.stats().expiries, 2u);
  EXPECT_GE(s.stats().serverDisconnects, 2u);
  EXPECT_GE(s.stats().reconnects, 2u);
  // Every re-establish had to mint a fresh token (the old one is expired).
  EXPECT_GE(b.hub.authority().issuedTotal(), 3u);
}

TEST(SessionTest, CleanDisconnectAndReconnectResumesSubscriptions) {
  BareHub b{5};
  Session s{b.hub, fastSession(), 42, regions::usEast()};
  s.subscribe(7);
  s.connect();
  b.sim.runFor(Duration::seconds(1));
  b.hub.publish(7, 111, 64);
  b.sim.runFor(Duration::seconds(1));
  EXPECT_EQ(s.stats().received, 1u);

  s.disconnect();
  EXPECT_EQ(s.state(), ConnectionState::Disconnected);
  b.sim.runFor(Duration::seconds(1));
  EXPECT_EQ(b.hub.stats().byes, 1u);
  b.hub.publish(7, 222, 64);  // missed while away
  b.sim.runFor(Duration::seconds(1));

  s.connect();
  b.sim.runFor(Duration::seconds(2));
  EXPECT_EQ(s.state(), ConnectionState::Connected);
  EXPECT_EQ(s.stats().received, 2u);   // the missed message was replayed
  EXPECT_EQ(s.stats().recovered, 1u);
  EXPECT_EQ(s.stats().duplicates, 0u);
  EXPECT_EQ(s.stats().gaps, 0u);
}

TEST(SessionTest, CloseIsTerminalAndReleasesServerState) {
  BareHub b{6};
  auto s = std::make_unique<Session>(b.hub, fastSession(), 42,
                                     regions::usEast());
  s->subscribe(7);
  s->connect();
  b.sim.runFor(Duration::seconds(1));
  s->close();
  EXPECT_EQ(s->state(), ConnectionState::Closed);
  EXPECT_EQ(b.hub.connectedCount(), 0u);
  EXPECT_EQ(b.hub.broker().subscriberCount(7), 0u);
  s->connect();  // no-op from Closed
  b.sim.runFor(Duration::seconds(1));
  EXPECT_EQ(s->state(), ConnectionState::Closed);
}

// --------------------------------------------------------------- backoff

TEST(SessionBackoffTest, SynchronizedDelaysAreTheExactExponentialCeiling) {
  BareHub b{7};
  SessionConfig cfg = fastSession();
  cfg.jitteredBackoff = false;
  Session s{b.hub, cfg, 1, regions::usEast()};
  // Attempt k waits min(max, min * factor^(k+1)): 200ms, 400ms, 800ms, ...
  EXPECT_EQ(s.backoffDelay(0).toNanos(), Duration::millis(200).toNanos());
  EXPECT_EQ(s.backoffDelay(1).toNanos(), Duration::millis(400).toNanos());
  EXPECT_EQ(s.backoffDelay(2).toNanos(), Duration::millis(800).toNanos());
  EXPECT_EQ(s.backoffDelay(3).toNanos(), Duration::millis(1600).toNanos());
  EXPECT_EQ(s.backoffDelay(9).toNanos(), Duration::seconds(2).toNanos());
}

TEST(SessionBackoffTest, JitterStaysInsideTheClampWindow) {
  BareHub b{8};
  Session s{b.hub, fastSession(), 1, regions::usEast()};
  const std::int64_t lo = Duration::millis(100).toNanos();
  const std::int64_t hi = Duration::millis(1600).toNanos();  // 100ms * 2^4
  bool varied = false;
  std::int64_t first = -1;
  for (int i = 0; i < 100; ++i) {
    const std::int64_t d = s.backoffDelay(3).toNanos();
    EXPECT_GE(d, lo);
    EXPECT_LE(d, hi);
    if (first < 0) first = d;
    varied = varied || d != first;
  }
  EXPECT_TRUE(varied);  // it genuinely draws, not a constant
}

TEST(SessionBackoffTest, JitterComesFromTheSimRngDeterministically) {
  auto draws = [](std::uint64_t seed) {
    BareHub b{seed};
    Session s{b.hub, fastSession(), 1, regions::usEast()};
    std::vector<std::int64_t> v;
    for (int i = 0; i < 16; ++i) v.push_back(s.backoffDelay(2).toNanos());
    return v;
  };
  EXPECT_EQ(draws(11), draws(11));  // same seed, same schedule
  EXPECT_NE(draws(11), draws(12));  // a different seed moves it
}

// ------------------------------------------------------- channel recovery

TEST(SessionRecoveryTest, ReplayDeliversMissedMessagesExactlyOnceInOrder) {
  BareHub b{9};
  Session s{b.hub, fastSession(), 42, regions::usEast()};
  std::vector<std::uint64_t> seqs;
  std::uint64_t replayedCount = 0;
  s.setOnMessage([&](Session&, std::uint64_t, std::uint64_t seq, std::uint64_t,
                     bool replayed) {
    seqs.push_back(seq);
    if (replayed) ++replayedCount;
  });
  s.subscribe(7);
  s.connect();
  b.sim.runFor(Duration::seconds(1));
  for (int i = 0; i < 5; ++i) b.hub.publish(7, 100 + i, 64);
  b.sim.runFor(Duration::seconds(1));

  b.hub.markShardDead(0);
  for (int i = 0; i < 5; ++i) b.hub.publish(7, 200 + i, 64);  // missed
  b.sim.runFor(Duration::seconds(8));  // deadline -> backoff -> resume

  EXPECT_EQ(s.state(), ConnectionState::Connected);
  ASSERT_EQ(seqs.size(), 10u);
  for (std::size_t i = 0; i < seqs.size(); ++i) EXPECT_EQ(seqs[i], i + 1);
  EXPECT_EQ(replayedCount, 5u);
  EXPECT_EQ(s.stats().recovered, 5u);
  EXPECT_EQ(s.stats().duplicates, 0u);
  EXPECT_EQ(s.stats().gaps, 0u);
  EXPECT_EQ(s.stats().fullRejoins, 0u);
  EXPECT_EQ(b.hub.stats().replayed, 5u);
}

TEST(SessionRecoveryTest, OutrunningTheHistoryWindowFallsBackToFullRejoin) {
  HubConfig hc;
  hc.historyWindow = 4;
  BareHub b{10, Duration::minutes(10), hc};
  Session s{b.hub, fastSession(), 42, regions::usEast()};
  s.subscribe(7);
  s.connect();
  b.sim.runFor(Duration::seconds(1));
  for (int i = 0; i < 3; ++i) b.hub.publish(7, i, 64);
  b.sim.runFor(Duration::seconds(1));

  b.hub.markShardDead(0);
  for (int i = 0; i < 20; ++i) b.hub.publish(7, 100 + i, 64);  // evicts 4..19
  b.sim.runFor(Duration::seconds(8));

  EXPECT_EQ(s.state(), ConnectionState::Connected);
  EXPECT_EQ(s.stats().fullRejoins, 1u);
  EXPECT_EQ(b.hub.stats().fullRejoins, 1u);
  // The cursor snapped to head: live again, the gap acknowledged as lost.
  EXPECT_EQ(s.lastSeq(7), b.hub.broker().headSeq(7));
  b.hub.publish(7, 999, 64);
  b.sim.runFor(Duration::seconds(1));
  EXPECT_EQ(s.lastSeq(7), b.hub.broker().headSeq(7));
  EXPECT_EQ(s.stats().gaps, 0u);  // full rejoin is not a sequence gap
}

}  // namespace
}  // namespace msim::session

// ---------------------------------------------- gateway reconnect placement

namespace msim::cluster {
namespace {

DataSpec plainSpec() {
  DataSpec spec;
  spec.provisioningFactor = 1.0;
  return spec;
}

TEST(GatewaySessionReconnectTest, ReconnectIsStickyWhileTheShardIsAlive) {
  Simulator sim{1};
  ClusterConfig cfg;
  cfg.initialInstances = 3;
  cfg.policy = PlacementPolicy::LeastLoaded;
  InstanceManager mgr{sim, plainSpec(), cfg};

  RelayInstance* a = mgr.joinUser(42, regions::usEast());
  ASSERT_NE(a, nullptr);
  mgr.suspendUser(42);  // binding lost, pin kept
  RelayInstance* b = mgr.reconnectUser(42, regions::usEast());
  EXPECT_EQ(b, a);
  EXPECT_EQ(mgr.stats().reconnectsSticky, 1u);
  EXPECT_EQ(mgr.stats().reconnectsReplaced, 0u);
}

TEST(GatewaySessionReconnectTest, CrashedPinIsReplacedThroughPolicy) {
  Simulator sim{2};
  ClusterConfig cfg;
  cfg.initialInstances = 3;
  cfg.policy = PlacementPolicy::LeastLoaded;
  InstanceManager mgr{sim, plainSpec(), cfg};

  RelayInstance* a = mgr.joinUser(42, regions::usEast());
  ASSERT_NE(a, nullptr);
  EXPECT_EQ(mgr.crash(a->id()), 1u);
  RelayInstance* b = mgr.reconnectUser(42, regions::usEast());
  ASSERT_NE(b, nullptr);
  EXPECT_NE(b->id(), a->id());
  EXPECT_EQ(b->state(), InstanceState::Active);
  EXPECT_EQ(mgr.stats().crashes, 1u);
  EXPECT_EQ(mgr.stats().reconnectsReplaced, 1u);
}

TEST(GatewaySessionReconnectTest, DrainedPinFollowsTheMigrationTarget) {
  Simulator sim{3};
  ClusterConfig cfg;
  cfg.initialInstances = 2;
  cfg.policy = PlacementPolicy::LeastLoaded;
  InstanceManager mgr{sim, plainSpec(), cfg};

  RelayInstance* a = mgr.joinUser(42, regions::usEast());
  ASSERT_NE(a, nullptr);
  mgr.drain(a->id());  // pin reassigned to the migration target
  mgr.suspendUser(42);
  RelayInstance* b = mgr.reconnectUser(42, regions::usEast());
  ASSERT_NE(b, nullptr);
  EXPECT_NE(b->id(), a->id());
  EXPECT_EQ(mgr.stats().reconnectsSticky, 1u);  // the moved pin was honoured
}

// ------------------------------------------------------- churn workloads

/// Short-fuse tuning shared by the workload acceptance tests.
ChurnWorkloadConfig fastChurn() {
  ChurnWorkloadConfig cfg;
  cfg.sessions = 60;
  cfg.shards = 3;
  cfg.channels = 6;
  cfg.connectWindow = Duration::seconds(1);
  cfg.publishStart = Duration::seconds(2);
  cfg.publishEvery = Duration::millis(200);
  cfg.publishUntil = Duration::seconds(20);
  cfg.runFor = Duration::seconds(30);
  cfg.session.pingInterval = Duration::seconds(2);
  cfg.session.maxPingDelay = Duration::seconds(1);
  cfg.session.minReconnectDelay = Duration::millis(100);
  cfg.session.maxReconnectDelay = Duration::seconds(2);
  return cfg;
}

TEST(SessionChurnTest, ReconnectStormAfterCrashLosesNothing) {
  ChurnWorkloadConfig cfg = fastChurn();
  cfg.crashAt = Duration::seconds(10);
  const ChurnWorkloadResult r = runChurnWorkload(17, cfg);

  EXPECT_EQ(r.connectedAtEnd, r.sessions);
  EXPECT_EQ(r.crashes, 1u);
  EXPECT_GT(r.pingTimeouts, 0u);          // the crash was silent
  EXPECT_GT(r.reconnects, 0u);
  EXPECT_GT(r.reconnectsReplaced, 0u);    // stale pins re-ran placement
  // The acceptance bar: recovery replays every missed message exactly once,
  // in order, with no full-state rejoin.
  EXPECT_GT(r.recovered, 0u);
  EXPECT_EQ(r.lost, 0u);
  EXPECT_EQ(r.duplicates, 0u);
  EXPECT_EQ(r.gaps, 0u);
  EXPECT_EQ(r.fullRejoins, 0u);
  // Zero loss means total receipts equal publishes times subscribers.
  EXPECT_EQ(r.received,
            r.published * (static_cast<std::uint64_t>(cfg.sessions) /
                           static_cast<std::uint64_t>(cfg.channels)));
}

TEST(SessionChurnTest, DrainReconnectsLandSticky) {
  ChurnWorkloadConfig cfg = fastChurn();
  cfg.drainAt = Duration::seconds(10);
  const ChurnWorkloadResult r = runChurnWorkload(18, cfg);

  EXPECT_EQ(r.connectedAtEnd, r.sessions);
  EXPECT_GT(r.reconnectsSticky, 0u);  // pins followed the migration target
  EXPECT_EQ(r.lost, 0u);
  EXPECT_EQ(r.duplicates, 0u);
  EXPECT_EQ(r.gaps, 0u);
  EXPECT_EQ(r.fullRejoins, 0u);
}

TEST(SessionChurnTest, TokenExpiryWaveRecoversWithoutLoss) {
  ChurnWorkloadConfig cfg = fastChurn();
  cfg.tokenTtl = Duration::seconds(6);
  cfg.session.tokenRefreshLead = Duration::zero();  // ride into the wave
  const ChurnWorkloadResult r = runChurnWorkload(19, cfg);

  EXPECT_GE(r.expiries, static_cast<std::uint64_t>(cfg.sessions));
  EXPECT_GT(r.serverDisconnects, 0u);
  EXPECT_EQ(r.connectedAtEnd, r.sessions);
  EXPECT_EQ(r.lost, 0u);
  EXPECT_EQ(r.duplicates, 0u);
  EXPECT_EQ(r.gaps, 0u);
}

TEST(SessionChurnTest, RefreshLeadPreventsTheExpiryWave) {
  ChurnWorkloadConfig cfg = fastChurn();
  cfg.tokenTtl = Duration::seconds(6);
  cfg.session.tokenRefreshLead = Duration::seconds(2);
  const ChurnWorkloadResult r = runChurnWorkload(20, cfg);

  EXPECT_EQ(r.expiries, 0u);
  EXPECT_GT(r.tokenRefreshes, 0u);
  EXPECT_EQ(r.connectedAtEnd, r.sessions);
  EXPECT_EQ(r.lost, 0u);
}

TEST(SessionChurnTest, JitteredBackoffBeatsSynchronizedHerd) {
  ChurnWorkloadConfig cfg = fastChurn();
  cfg.sessions = 150;
  cfg.connectWindow = Duration::seconds(2);
  cfg.connectCost = Duration::millis(2);
  cfg.herdAt = Duration::seconds(10);
  cfg.session.minReconnectDelay = Duration::millis(200);
  cfg.session.maxReconnectDelay = Duration::seconds(5);
  cfg.session.backoffFactor = 8.0;

  ChurnWorkloadConfig sync = cfg;
  sync.session.jitteredBackoff = false;
  const ChurnWorkloadResult rSync = runChurnWorkload(21, sync);
  const ChurnWorkloadResult rJit = runChurnWorkload(21, cfg);

  // Both herds recover fully...
  EXPECT_EQ(rSync.connectedAtEnd, rSync.sessions);
  EXPECT_EQ(rJit.connectedAtEnd, rJit.sessions);
  EXPECT_EQ(rSync.lost, 0u);
  EXPECT_EQ(rJit.lost, 0u);
  // ...but lockstep retries slam the connect queue while jitter spreads it.
  EXPECT_GT(rSync.peakQueueInflation, 50.0);
  EXPECT_LT(rJit.peakQueueInflation, rSync.peakQueueInflation / 2.0);
}

// ------------------------------------------------ thread-invariance sweep

audit::RunFingerprint churnFingerprint(std::uint64_t seed) {
  ChurnWorkloadConfig cfg = fastChurn();
  cfg.sessions = 40;
  cfg.crashAt = Duration::seconds(10);
  cfg.tokenTtl = Duration::seconds(12);
  cfg.session.tokenRefreshLead = Duration::zero();  // expiry wave too
  return runChurnWorkload(seed, cfg).fingerprint;
}

TEST(SessionSweepTest, ChurnDigestsIdenticalAcrossThreadCounts) {
  const auto seeds = defaultSeeds(2);
  for (const unsigned threads : {2u, 8u}) {
    const auto report =
        audit::verifyThreadInvariance(seeds, churnFingerprint, 1, threads);
    EXPECT_TRUE(report.identical) << report.describe();
  }
}

TEST(SessionSweepTest, ChurnFingerprintIsNotDegenerate) {
  const auto a = churnFingerprint(1000);
  const auto b = churnFingerprint(8919);
  EXPECT_GT(a.events, 1000u);
  EXPECT_FALSE(a == b);
}

}  // namespace
}  // namespace msim::cluster

// ------------------------------------------- networked token establishment

namespace msim {
namespace {

TEST(SessionGateTest, EstablishAndRefreshRideTheControlChannel) {
  Testbed bed{3};
  PlatformSpec spec = platforms::vrchat();
  spec.session.tokenTtl = Duration::seconds(15);
  spec.session.tokenRefreshLead = Duration::seconds(5);
  PlatformDeployment& dep = bed.deploy(spec);
  TestUser& u = bed.addUser();

  // The hub verifies with the deployment's authority (same secret), while
  // the gate turns every token request into a real HTTPS round trip from
  // the headset to the nearest control site.
  session::SessionHub hub{bed.sim(), dep.tokenAuthority(), {}};
  ControlSessionGate gate{hub, *u.headsetNode, dep};
  session::Session s{hub, sessionConfigFor(spec.session), 99,
                     regions::usEast()};
  s.connect();
  bed.sim().runFor(Duration::seconds(30));

  EXPECT_EQ(s.state(), session::ConnectionState::Connected);
  EXPECT_EQ(gate.failures(), 0u);
  EXPECT_GE(gate.establishRequests(), 1u);
  EXPECT_GE(gate.refreshRequests(), 2u);  // ~every 10 s with a 15 s ttl
  EXPECT_EQ(dep.sessionEstablishesServed(), gate.establishRequests());
  EXPECT_EQ(dep.sessionRefreshesServed(), gate.refreshRequests());
  EXPECT_GE(s.stats().tokenRefreshes, 2u);
  EXPECT_EQ(hub.stats().expiries, 0u);
}

}  // namespace
}  // namespace msim
