// Event-capacity limits (§6.2) and the AP trace export.

#include <gtest/gtest.h>

#include "core/experiments.hpp"

namespace msim {
namespace {

TEST(EventCapacityTest, WorldsCapsAtSixteenUsers) {
  Testbed bed{67};
  bed.deploy(platforms::worlds());
  for (int i = 0; i < 18; ++i) {
    TestUserConfig cfg;
    cfg.wander = false;
    bed.addUser(cfg);
  }
  bed.sim().schedule(TimePoint::epoch(), [&] {
    for (auto& u : bed.users()) u->client->launch();
  });
  for (int i = 0; i < 18; ++i) {
    bed.sim().schedule(TimePoint::epoch() + Duration::seconds(2 + i),
                       [&, i] { bed.user(i).client->joinEvent(); });
  }
  bed.sim().runFor(Duration::seconds(30));
  EXPECT_EQ(bed.deployment().room()->userCount(), 16u);
  int inEvent = 0;
  int refused = 0;
  for (auto& u : bed.users()) {
    if (u->client->phase() == ClientPhase::InEvent) ++inEvent;
    if (u->client->eventFull()) ++refused;
  }
  EXPECT_EQ(inEvent, 16);
  EXPECT_EQ(refused, 2);
  // A refused client is back on the welcome page, not wedged.
  EXPECT_EQ(bed.user(17).client->phase(), ClientPhase::WelcomePage);
}

TEST(EventCapacityTest, UncappedPlatformsAcceptLargeEvents) {
  Testbed bed{67};
  bed.deploy(platforms::hubsPrivate());  // the paper's 28-user event
  for (int i = 0; i < 20; ++i) {
    TestUserConfig cfg;
    cfg.wander = false;
    bed.addUser(cfg);
  }
  bed.sim().schedule(TimePoint::epoch(), [&] {
    for (auto& u : bed.users()) {
      u->client->launch();
      u->client->joinEvent();
    }
  });
  bed.sim().runFor(Duration::seconds(20));
  EXPECT_EQ(bed.deployment().room()->userCount(), 20u);
}

TEST(EventCapacityTest, SlotFreesWhenSomeoneLeaves) {
  Testbed bed{69};
  bed.deploy(platforms::worlds());
  for (int i = 0; i < 17; ++i) {
    TestUserConfig cfg;
    cfg.wander = false;
    bed.addUser(cfg);
  }
  bed.sim().schedule(TimePoint::epoch(), [&] {
    for (int i = 0; i < 16; ++i) {
      bed.user(i).client->launch();
      bed.user(i).client->joinEvent();
    }
    bed.user(16).client->launch();
  });
  bed.sim().schedule(TimePoint::epoch() + Duration::seconds(5),
                     [&] { bed.user(0).client->leaveEvent(); });
  bed.sim().schedule(TimePoint::epoch() + Duration::seconds(8),
                     [&] { bed.user(16).client->joinEvent(); });
  bed.sim().runFor(Duration::seconds(15));
  EXPECT_EQ(bed.user(16).client->phase(), ClientPhase::InEvent);
  EXPECT_FALSE(bed.user(16).client->eventFull());
  EXPECT_EQ(bed.deployment().room()->userCount(), 16u);
}

TEST(TraceExportTest, RendersTcpdumpStyleLines) {
  Testbed bed{71};
  bed.deploy(platforms::vrchat());
  TestUser& u1 = bed.addUser();
  TestUser& u2 = bed.addUser();
  bed.sim().schedule(TimePoint::epoch(), [&] {
    u1.client->launch();
    u2.client->launch();
    u1.client->joinEvent();
    u2.client->joinEvent();
  });
  bed.sim().runFor(Duration::seconds(5));
  const std::string trace = u1.capture->exportTraceText(200);
  EXPECT_NE(trace.find("UP"), std::string::npos);
  EXPECT_NE(trace.find("DOWN"), std::string::npos);
  EXPECT_NE(trace.find("UDP"), std::string::npos);   // data channel
  EXPECT_NE(trace.find("TCP"), std::string::npos);   // control channel
  EXPECT_NE(trace.find("[data-up]"), std::string::npos);
  // maxLines is honoured.
  int lines = 0;
  for (const char c : trace) lines += c == '\n' ? 1 : 0;
  EXPECT_EQ(lines, 200);
}

}  // namespace
}  // namespace msim
