// Edge-case and failure-injection tests for the transport substrate and the
// RTP voice relay — the paths the mainline suites don't stress.

#include <gtest/gtest.h>

#include <cmath>

#include "platform/rtp_relay.hpp"
#include "transport/http.hpp"
#include "transport/rtp.hpp"
#include "transport/tcp.hpp"
#include "transport/tls.hpp"

namespace msim {
namespace {

class EdgeFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    a = &net.addNode("a");
    b = &net.addNode("b");
    a->addAddress(Ipv4Address(10, 0, 0, 1));
    b->addAddress(Ipv4Address(10, 0, 0, 2));
    LinkConfig cfg;
    cfg.rate = DataRate::mbps(50);
    cfg.delay = Duration::millis(10);
    auto [da, db] = Link::connect(*a, *b, cfg);
    a->setDefaultRoute(da);
    b->setDefaultRoute(db);
    devA = &da;
    devB = &db;
  }

  Simulator sim{77};
  Network net{sim};
  Node* a{};
  Node* b{};
  NetDevice* devA{};
  NetDevice* devB{};
};

// ---------------------------------------------------------------- TCP edges

TEST_F(EdgeFixture, ListenerOwnsUnretainedConnections) {
  TcpListener listener{*b, 443};
  listener.onAccept([](const std::shared_ptr<TcpSocket>&) {
    // Deliberately do not retain: the listener must keep it alive.
  });
  auto c1 = TcpSocket::create(*a);
  auto c2 = TcpSocket::create(*a);
  c1->connect(Endpoint{b->primaryAddress(), 443}, nullptr);
  c2->connect(Endpoint{b->primaryAddress(), 443}, nullptr);
  sim.runFor(Duration::seconds(2));
  EXPECT_EQ(listener.openConnections(), 2u);
  c1->close();
  sim.runFor(Duration::seconds(5));
  EXPECT_EQ(listener.openConnections(), 2u);  // half-closed: server side open
  // (the server never closes in this test; both server sockets persist)
}

TEST_F(EdgeFixture, AbortReleasesListenerOwnership) {
  TcpListener listener{*b, 443};
  auto client = TcpSocket::create(*a);
  client->connect(Endpoint{b->primaryAddress(), 443}, nullptr);
  sim.runFor(Duration::seconds(1));
  ASSERT_EQ(listener.openConnections(), 1u);
  client->abort();  // RST closes the server side too
  sim.runFor(Duration::seconds(2));
  EXPECT_EQ(listener.openConnections(), 0u);
}

TEST_F(EdgeFixture, SendBeforeEstablishedIsQueued) {
  TcpListener listener{*b, 443};
  std::int64_t got = 0;
  listener.onAccept([&](const std::shared_ptr<TcpSocket>& s) {
    s->onMessage([&](const Message& m) { got += m.size.toBytes(); });
  });
  auto client = TcpSocket::create(*a);
  client->connect(Endpoint{b->primaryAddress(), 443}, nullptr);
  // Queue immediately, before the handshake has any chance to finish.
  Message m;
  m.kind = "early";
  m.size = ByteSize::bytes(5'000);
  client->send(std::move(m));
  sim.run();
  EXPECT_EQ(got, 5'000);
}

TEST_F(EdgeFixture, ZeroSizeMessageIsClampedNotLost) {
  TcpListener listener{*b, 443};
  int count = 0;
  listener.onAccept([&](const std::shared_ptr<TcpSocket>& s) {
    s->onMessage([&](const Message&) { ++count; });
  });
  auto client = TcpSocket::create(*a);
  client->connect(Endpoint{b->primaryAddress(), 443}, nullptr);
  Message m;
  m.kind = "empty";
  m.size = ByteSize::zero();
  client->send(std::move(m));
  sim.run();
  EXPECT_EQ(count, 1);
}

TEST_F(EdgeFixture, CloseFlushesQueuedDataFirst) {
  TcpListener listener{*b, 443};
  std::int64_t got = 0;
  bool closed = false;
  listener.onAccept([&](const std::shared_ptr<TcpSocket>& s) {
    s->onMessage([&](const Message& m) { got += m.size.toBytes(); });
    s->onClose([&] { closed = true; });
  });
  auto client = TcpSocket::create(*a);
  client->connect(Endpoint{b->primaryAddress(), 443}, nullptr);
  Message m;
  m.kind = "tail";
  m.size = ByteSize::bytes(200'000);
  client->send(std::move(m));
  client->close();  // FIN must trail the queued payload
  sim.run();
  EXPECT_EQ(got, 200'000);
  EXPECT_TRUE(closed);
}

TEST_F(EdgeFixture, ReceiveWindowBoundsThroughput) {
  TcpConfig tiny;
  tiny.receiveWindow = 16'384;  // 16 KB window on a 20 ms RTT path
  TcpListener listener{*b, 443, tiny};
  std::int64_t got = 0;
  listener.onAccept([&](const std::shared_ptr<TcpSocket>& s) {
    s->onMessage([&](const Message& m) { got += m.size.toBytes(); });
  });
  TcpConfig clientCfg;
  clientCfg.receiveWindow = 16'384;
  auto client = TcpSocket::create(*a, clientCfg);
  client->connect(Endpoint{b->primaryAddress(), 443}, nullptr);
  Message m;
  m.kind = "bulk";
  m.size = ByteSize::megabytes(1);
  client->send(std::move(m));
  const TimePoint start = sim.now();
  sim.run();
  const double secs = (sim.now() - start).toSeconds();
  // Window/RTT bound: 16 KB / 20 ms = 800 KB/s = 6.4 Mbps tops.
  EXPECT_EQ(got, 1'000'000);
  EXPECT_GT(secs, 1'000'000.0 / (16'384.0 / 0.020) * 0.7);
}

TEST_F(EdgeFixture, AckStallAgeTracksDeliveryHealth) {
  TcpListener listener{*b, 443};
  listener.onAccept([](const std::shared_ptr<TcpSocket>& s) {
    s->onMessage([](const Message&) {});
  });
  auto client = TcpSocket::create(*a);
  client->connect(Endpoint{b->primaryAddress(), 443}, nullptr);
  sim.runFor(Duration::seconds(1));
  EXPECT_TRUE(client->ackStallAge().isZero());  // idle

  NetemConfig blackout;
  blackout.lossRate = 1.0;
  devA->netem().configure(blackout);
  Message m;
  m.kind = "stuck";
  m.size = ByteSize::bytes(1000);
  client->send(std::move(m));
  sim.runFor(Duration::seconds(10));
  EXPECT_GT(client->ackStallAge().toSeconds(), 8.0);

  devA->netem().reset();
  sim.runFor(Duration::minutes(2));  // retransmission catches up
  EXPECT_TRUE(client->ackStallAge().isZero());
}

TEST_F(EdgeFixture, TlsRecordOverheadAppearsOnWire) {
  TcpConfig plain;
  TcpConfig tls;
  tls.extraPerSegmentOverhead = wire::kTlsRecord;
  std::int64_t plainBytes = 0;
  std::int64_t tlsBytes = 0;
  devA->addTap([&](const Packet& p, TapDir dir) {
    if (dir != TapDir::Egress || p.proto != IpProto::Tcp) return;
    if (p.dstPort == 443) plainBytes += p.wireSize().toBytes();
    if (p.dstPort == 444) tlsBytes += p.wireSize().toBytes();
  });
  TcpListener l1{*b, 443, plain};
  TcpListener l2{*b, 444, tls};
  l1.onAccept([](const std::shared_ptr<TcpSocket>& s) { s->onMessage([](const Message&) {}); });
  l2.onAccept([](const std::shared_ptr<TcpSocket>& s) { s->onMessage([](const Message&) {}); });
  auto c1 = TcpSocket::create(*a, plain);
  auto c2 = TcpSocket::create(*a, tls);
  c1->connect(Endpoint{b->primaryAddress(), 443}, nullptr);
  c2->connect(Endpoint{b->primaryAddress(), 444}, nullptr);
  for (int i = 0; i < 50; ++i) {
    Message m;
    m.kind = "x";
    m.size = ByteSize::bytes(500);
    c1->send(m);
    c2->send(std::move(m));
  }
  sim.run();
  // The record overhead is per *segment*, not per message: 50 x 500 B
  // batches into ~18 MSS-sized segments, each carrying +29 B.
  const double segments = std::ceil(50 * 500.0 / wire::kTcpMss);
  EXPECT_NEAR(tlsBytes - plainBytes, segments * wire::kTlsRecord,
              6.0 * wire::kTlsRecord);
}

// --------------------------------------------------------------- HTTP edges

TEST_F(EdgeFixture, RequestToDeadServerFailsFast) {
  TransportMux::of(*b);  // host is up (answers RST), port is closed
  HttpClient client{*a};
  int status = -1;
  client.request(Endpoint{b->primaryAddress(), 8443},  // nothing listens
                 HttpRequest{"/x"},
                 [&](const HttpResponse& r, Duration) { status = r.status; });
  sim.runFor(Duration::minutes(1));
  EXPECT_EQ(status, 0);  // connection-level failure surfaced
  EXPECT_FALSE(client.busy());
}

TEST_F(EdgeFixture, FreshConnectionAfterFailure) {
  TransportMux::of(*b);
  HttpClient client{*a};
  int first = -1;
  client.request(Endpoint{b->primaryAddress(), 443}, HttpRequest{"/x"},
                 [&](const HttpResponse& r, Duration) { first = r.status; });
  sim.runFor(Duration::minutes(1));
  ASSERT_EQ(first, 0);  // no server yet

  HttpServer server{*b, 443};
  server.route("/", [](const HttpRequest&) { return HttpResponse{200}; });
  int second = -1;
  client.request(Endpoint{b->primaryAddress(), 443}, HttpRequest{"/x"},
                 [&](const HttpResponse& r, Duration) { second = r.status; });
  sim.runFor(Duration::minutes(1));
  EXPECT_EQ(second, 200);  // a new connection replaced the dead one
}

TEST_F(EdgeFixture, ResponsesTimeElapsedIsPlausible) {
  HttpServer server{*b, 443};
  server.route("/", [](const HttpRequest&) { return HttpResponse{200}; });
  HttpClient client{*a};
  Duration elapsed;
  client.request(Endpoint{b->primaryAddress(), 443}, HttpRequest{"/x"},
                 [&](const HttpResponse&, Duration d) { elapsed = d; });
  sim.run();
  // Includes TCP+TLS handshakes on a 20 ms RTT path: at least 3 RTT.
  EXPECT_GE(elapsed.toMillis(), 60.0);
  EXPECT_LE(elapsed.toMillis(), 200.0);
}

// ----------------------------------------------------------- RTP/SFU edges

TEST_F(EdgeFixture, RtpLargeFrameFragmentsAndCounts) {
  RtpSession tx{*a};
  RtpSession rx{*b, 7000};
  tx.setRemote(Endpoint{b->primaryAddress(), 7000});
  int frames = 0;
  std::int64_t bytes = 0;
  rx.onFrame([&](const Packet& p, const Endpoint&) {
    ++frames;
    bytes += p.payloadBytes.toBytes();
  });
  tx.sendFrame(ByteSize::bytes(5'000));  // > MTU: 4 fragments
  sim.run();
  EXPECT_EQ(bytes, 5'000);
  EXPECT_EQ(rx.framesReceived(), 1u);  // message rides the last fragment
}

TEST_F(EdgeFixture, RtpRelayForwardsToOthersOnly) {
  Node& c = net.addNode("c");
  c.addAddress(Ipv4Address(10, 0, 0, 3));
  LinkConfig cfg;
  cfg.delay = Duration::millis(5);
  auto [dc, dbc] = Link::connect(c, *b, cfg);
  c.setDefaultRoute(dc);
  b->addHostRoute(c.primaryAddress(), dbc);

  RtpRelay relay{*b, 5056};
  RtpSession alice{*a};
  RtpSession carol{c};
  alice.setRemote(Endpoint{b->primaryAddress(), 5056});
  carol.setRemote(Endpoint{b->primaryAddress(), 5056});

  int aliceGot = 0;
  int carolGot = 0;
  alice.onFrame([&](const Packet&, const Endpoint&) { ++aliceGot; });
  carol.onFrame([&](const Packet&, const Endpoint&) { ++carolGot; });

  // Both register (first frame), then Alice talks.
  carol.sendFrame(ByteSize::bytes(80));
  alice.sendFrame(ByteSize::bytes(80));
  sim.runFor(Duration::seconds(1));
  for (int i = 0; i < 10; ++i) alice.sendFrame(ByteSize::bytes(80));
  // Bounded run: the relay's eviction sweep keeps the event queue alive
  // forever, so run() would never drain.
  sim.runFor(Duration::seconds(5));
  EXPECT_GE(carolGot, 10);       // Carol hears Alice
  EXPECT_LE(aliceGot, 2);        // Alice does not hear herself
  EXPECT_EQ(relay.participantCount(), 2u);
}

TEST_F(EdgeFixture, RtpRelayAnswersRtcpForRttMeasurement) {
  RtpRelay relay{*b, 5056};
  RtpSession alice{*a};
  alice.setRemote(Endpoint{b->primaryAddress(), 5056});
  alice.startRtcp(Duration::seconds(1));
  sim.runFor(Duration::seconds(5));
  ASSERT_TRUE(alice.lastRtt().has_value());
  EXPECT_NEAR(alice.lastRtt()->toMillis(), 20.0, 3.0);
}

TEST_F(EdgeFixture, RtpRelayForgetsSilentParticipants) {
  RtpRelay relay{*b, 5056};
  relay.setParticipantTimeout(Duration::seconds(10));
  RtpSession alice{*a};
  alice.setRemote(Endpoint{b->primaryAddress(), 5056});
  alice.sendFrame(ByteSize::bytes(80));
  sim.runFor(Duration::seconds(2));
  EXPECT_EQ(relay.participantCount(), 1u);
  sim.runFor(Duration::seconds(30));
  EXPECT_EQ(relay.participantCount(), 0u);
}

// -------------------------------------------------------------- netem edges

TEST_F(EdgeFixture, TcpOnlyFilterLeavesUdpUntouched) {
  NetemConfig cfg;
  cfg.filter = NetemFilter::TcpOnly;
  cfg.lossRate = 1.0;
  devA->netem().configure(cfg);

  UdpSocket server{*b, 6000};
  UdpSocket client{*a};
  int udpGot = 0;
  server.onReceive([&](const Packet&, const Endpoint&) { ++udpGot; });
  for (int i = 0; i < 20; ++i) {
    client.sendTo(Endpoint{b->primaryAddress(), 6000}, ByteSize::bytes(100));
  }
  auto tcp = TcpSocket::create(*a);
  bool connected = true;
  tcp->connect(Endpoint{b->primaryAddress(), 443},
               [&](bool ok) { connected = ok; });
  sim.runFor(Duration::minutes(5));
  EXPECT_EQ(udpGot, 20);        // UDP sails through
  EXPECT_FALSE(connected);      // TCP is annihilated
}

TEST_F(EdgeFixture, UdpOnlyFilterLeavesTcpUntouched) {
  NetemConfig cfg;
  cfg.filter = NetemFilter::UdpOnly;
  cfg.lossRate = 1.0;
  devA->netem().configure(cfg);

  UdpSocket server{*b, 6000};
  UdpSocket client{*a};
  int udpGot = 0;
  server.onReceive([&](const Packet&, const Endpoint&) { ++udpGot; });
  client.sendTo(Endpoint{b->primaryAddress(), 6000}, ByteSize::bytes(100));

  TcpListener listener{*b, 443};
  auto tcp = TcpSocket::create(*a);
  bool connected = false;
  tcp->connect(Endpoint{b->primaryAddress(), 443},
               [&](bool ok) { connected = ok; });
  sim.runFor(Duration::seconds(5));
  EXPECT_EQ(udpGot, 0);
  EXPECT_TRUE(connected);
}

}  // namespace
}  // namespace msim
