// Tests for the measurement harness: testbed wiring, capture/classification,
// latency probe (including a ground-truth cross-check of the paper's
// screen-recording method), and the disruption driver.

#include <gtest/gtest.h>

#include "core/experiments.hpp"

namespace msim {
namespace {

// ------------------------------------------------------------------ testbed

TEST(TestbedTest, UsersGetDistinctAddressesAndClocks) {
  Testbed bed{1};
  bed.deploy(platforms::vrchat());
  TestUser& u1 = bed.addUser();
  TestUser& u2 = bed.addUser();
  EXPECT_NE(u1.headsetNode->primaryAddress(), u2.headsetNode->primaryAddress());
  EXPECT_NE(u1.ap->primaryAddress(), u2.ap->primaryAddress());
  // Clocks drift randomly (the §7 method must correct for this).
  EXPECT_NE(u1.headset->trueClockOffset(), u2.headset->trueClockOffset());
}

TEST(TestbedTest, CaptureSeesBothDirections) {
  Testbed bed{2};
  bed.deploy(platforms::vrchat());
  TestUser& u1 = bed.addUser();
  TestUser& u2 = bed.addUser();
  bed.sim().schedule(TimePoint::epoch(), [&] {
    u1.client->launch();
    u2.client->launch();
    u1.client->joinEvent();
    u2.client->joinEvent();
  });
  bed.sim().runFor(Duration::seconds(20));
  EXPECT_GT(u1.capture->series(Channel::DataUp).total(), 0.0);
  EXPECT_GT(u1.capture->series(Channel::DataDown).total(), 0.0);
  // U1's AP never sees U2's traffic (separate APs, as in Fig. 1).
  bool foreign = false;
  for (const auto& rec : u1.capture->records()) {
    if (rec.src == u2.headsetNode->primaryAddress() ||
        rec.dst == u2.headsetNode->primaryAddress()) {
      foreign = true;
    }
  }
  EXPECT_FALSE(foreign);
}

TEST(TestbedTest, DownlinkNetemShapesWhatCaptureSees) {
  Testbed bed{3};
  bed.deploy(platforms::worlds());
  TestUser& u1 = bed.addUser();
  TestUser& u2 = bed.addUser();
  bed.sim().schedule(TimePoint::epoch(), [&] {
    u1.client->launch();
    u2.client->launch();
    u1.client->joinEvent();
    u2.client->joinEvent();
  });
  bed.sim().runFor(Duration::seconds(15));
  NetemConfig cap;
  cap.rateLimit = DataRate::kbps(100);
  cap.shaperBuffer = ByteSize::bytes(4000);
  u1.downlinkNetem().configure(cap);
  bed.sim().runFor(Duration::seconds(20));
  const double shaped =
      u1.capture->meanRate(Channel::DataDown, 20, 34).toKbps();
  EXPECT_LT(shaped, 130.0);  // the capture point is downstream of the shaper
  EXPECT_GT(shaped, 50.0);
}

// ------------------------------------------------------------ classification

TEST(CaptureTest, ChannelsClassifiedByServerAddress) {
  Testbed bed{4};
  bed.deploy(platforms::vrchat());
  TestUser& u1 = bed.addUser();
  TestUser& u2 = bed.addUser();
  bed.sim().schedule(TimePoint::epoch(), [&] {
    u1.client->launch();
    u2.client->launch();
  });
  bed.sim().runFor(Duration::seconds(30));
  // Welcome page: control traffic only.
  EXPECT_GT(u1.capture->series(Channel::ControlDown).total(), 0.0);
  EXPECT_DOUBLE_EQ(u1.capture->series(Channel::DataUp).total(), 0.0);
  bed.sim().schedule(bed.sim().now(), [&] {
    u1.client->joinEvent();
    u2.client->joinEvent();
  });
  bed.sim().runFor(Duration::seconds(20));
  EXPECT_GT(u1.capture->series(Channel::DataUp).total(), 0.0);
  EXPECT_DOUBLE_EQ(u1.capture->series(Channel::Other).total(), 0.0);
}

TEST(CaptureTest, ProtoSeriesSeparateTcpFromUdp) {
  Testbed bed{5};
  bed.deploy(platforms::worlds());
  TestUser& u1 = bed.addUser();
  TestUser& u2 = bed.addUser();
  bed.sim().schedule(TimePoint::epoch(), [&] {
    u1.client->launch();
    u2.client->launch();
    u1.client->joinEvent();
    u2.client->joinEvent();
  });
  bed.sim().runFor(Duration::seconds(25));
  // Worlds: data = UDP, control = HTTPS/TCP.
  EXPECT_GT(u1.capture->protoSeries(IpProto::Udp, true).total(), 0.0);
  EXPECT_GT(u1.capture->protoSeries(IpProto::Tcp, true).total(), 0.0);
  // UDP dominates in-event bytes.
  EXPECT_GT(u1.capture->protoSeries(IpProto::Udp, true).meanRate(15, 24).toKbps(),
            u1.capture->protoSeries(IpProto::Tcp, true).meanRate(15, 24).toKbps());
}

// -------------------------------------------------------------- experiments

TEST(ExperimentTest, TwoUserThroughputTracksTable3) {
  struct Expect {
    PlatformSpec spec;
    double up, down, avatar;
  };
  const Expect cases[] = {
      {platforms::vrchat(), 31.4, 31.3, 24.7},
      {platforms::altspaceVR(), 41.3, 40.4, 11.1},
      {platforms::recRoom(), 41.7, 41.5, 35.2},
      {platforms::worlds(), 752, 413, 332},
  };
  for (const auto& c : cases) {
    const TwoUserThroughputRow row = runTwoUserThroughput(c.spec, 2);
    EXPECT_NEAR(row.upKbps, c.up, 0.10 * c.up) << c.spec.name;
    EXPECT_NEAR(row.downKbps, c.down, 0.10 * c.down) << c.spec.name;
    EXPECT_NEAR(row.avatarKbps, c.avatar, 0.15 * c.avatar) << c.spec.name;
  }
}

TEST(ExperimentTest, HubsThroughputWithinHttpsOverheadBand) {
  // Hubs rides TLS/TCP; our stack's ACK overhead lands slightly above the
  // paper's 83 Kbps — the avatar component must still match exactly.
  const TwoUserThroughputRow row = runTwoUserThroughput(platforms::hubs(), 2);
  EXPECT_NEAR(row.avatarKbps, 77.4, 5.0);
  EXPECT_GT(row.upKbps, 80.0);
  EXPECT_LT(row.upKbps, 105.0);
}

// Property sweep: linear throughput scaling for every platform (§6).
class ScalingSweep : public ::testing::TestWithParam<int> {};

TEST_P(ScalingSweep, DownlinkScalesLinearlyWithUsers) {
  const PlatformSpec spec = platforms::allFive()[static_cast<std::size_t>(GetParam())];
  const SweepPoint p2 = runUsersSweepPoint(spec, 2, 1, Duration::seconds(15));
  const SweepPoint p5 = runUsersSweepPoint(spec, 5, 1, Duration::seconds(15));
  const SweepPoint p9 = runUsersSweepPoint(spec, 9, 1, Duration::seconds(15));
  // Downlink = fixed misc + per-avatar slope * (N-1): the incremental slope
  // must be consistent across segments (linearity) and clearly positive.
  const double slopeA = (p5.downMbps - p2.downMbps) / 3.0;
  const double slopeB = (p9.downMbps - p5.downMbps) / 4.0;
  EXPECT_GT(slopeA, 0.0) << spec.name;
  EXPECT_NEAR(slopeB, slopeA, 0.35 * slopeA) << spec.name;
  // And the per-user slope matches the platform's avatar rate.
  EXPECT_NEAR(slopeA * 1000.0, spec.avatar.meanUpdateRate().toKbps(),
              0.6 * spec.avatar.meanUpdateRate().toKbps() + 8.0)
      << spec.name;
}

TEST_P(ScalingSweep, FpsDeclinesWithUsers) {
  const PlatformSpec spec = platforms::allFive()[static_cast<std::size_t>(GetParam())];
  const SweepPoint p1 = runUsersSweepPoint(spec, 1, 1, Duration::seconds(15));
  const SweepPoint p15 = runUsersSweepPoint(spec, 15, 1, Duration::seconds(15));
  EXPECT_GT(p1.fps, 69.0) << spec.name;
  EXPECT_LT(p15.fps, p1.fps - 10.0) << spec.name;
  EXPECT_GT(p15.cpuPct, p1.cpuPct + 5.0) << spec.name;
  EXPECT_GT(p15.memGB, p1.memGB + 0.10) << spec.name;  // ~10 MB/avatar
}

INSTANTIATE_TEST_SUITE_P(AllPlatforms, ScalingSweep, ::testing::Range(0, 5));

TEST(ExperimentTest, ViewportDetectionFindsAltspaceWidth) {
  const ViewportDetection alt = runViewportDetection(platforms::altspaceVR(), 3);
  EXPECT_GE(alt.inferredWidthDeg, 135.0);
  EXPECT_LE(alt.inferredWidthDeg, 180.0);
  const ViewportDetection vrchat = runViewportDetection(platforms::vrchat(), 3);
  EXPECT_DOUBLE_EQ(vrchat.inferredWidthDeg, 360.0);
}

TEST(ExperimentTest, Fig6TurnOnlyAffectsAltspace) {
  auto turnEffect = [](const PlatformSpec& spec) {
    const JoinTimeline t = runJoinTimeline(spec, Fig6Variant::FacingJoiners, 7);
    double before = 0;
    double after = 0;
    for (int s = 220; s < 248; ++s) before += t.downKbps[s];
    for (int s = 262; s < 290; ++s) after += t.downKbps[s];
    return after / before;
  };
  EXPECT_LT(turnEffect(platforms::altspaceVR()), 0.6);
  EXPECT_GT(turnEffect(platforms::vrchat()), 0.85);
}

TEST(ExperimentTest, LatencyOrderingMatchesTable4) {
  const LatencyRow rec = runLatencyExperiment(platforms::recRoom(), 2, 10, 2);
  const LatencyRow worlds = runLatencyExperiment(platforms::worlds(), 2, 10, 2);
  const LatencyRow alt = runLatencyExperiment(platforms::altspaceVR(), 2, 10, 2);
  const LatencyRow hubs = runLatencyExperiment(platforms::hubs(), 2, 10, 2);
  const LatencyRow hubsPriv = runLatencyExperiment(platforms::hubsPrivate(), 2, 10, 2);
  EXPECT_LT(rec.e2eMs, worlds.e2eMs);
  EXPECT_LT(worlds.e2eMs, alt.e2eMs);
  EXPECT_LT(alt.e2eMs, hubs.e2eMs);
  // §7: the private server cuts Hubs' server latency by ~70%.
  EXPECT_LT(hubsPriv.serverMs, 0.45 * hubs.serverMs);
  EXPECT_LT(hubsPriv.e2eMs, hubs.e2eMs - 60.0);
  // Receiver processing > sender processing everywhere (local rendering).
  for (const auto& row : {rec, worlds, alt, hubs}) {
    EXPECT_GT(row.receiverMs, row.senderMs) << row.platform;
  }
  // Receiver > server except AltspaceVR (viewport prediction).
  EXPECT_GT(rec.receiverMs, rec.serverMs);
  EXPECT_LT(alt.receiverMs, alt.serverMs);
}

TEST(ExperimentTest, LatencyGrowsWithUsers) {
  const LatencyRow two = runLatencyExperiment(platforms::recRoom(), 2, 10, 2);
  const LatencyRow seven = runLatencyExperiment(platforms::recRoom(), 7, 10, 2);
  EXPECT_GT(seven.e2eMs, two.e2eMs + 15.0);
}

TEST(ExperimentTest, ScreenMethodMatchesGroundTruth) {
  // The §7 method (screen recording + ADB clock sync) must agree with the
  // simulator's ground truth to within the sync error budget.
  Testbed bed{31};
  bed.deploy(platforms::recRoom());
  TestUser& u1 = bed.addUser();
  TestUser& u2 = bed.addUser();
  u1.client->motion().setPose(Pose{0, 0, 0});
  u2.client->motion().setPose(Pose{1, 0, 180});
  u1.client->setFaceTarget(1, 0);
  u2.client->setFaceTarget(0, 0);
  bed.sim().schedule(TimePoint::epoch(), [&] {
    u1.client->launch();
    u2.client->launch();
    u1.client->joinEvent();
    u2.client->joinEvent();
  });
  // Ground truth: time from performVisibleAction to the receiver's display,
  // read straight from the recorder with TRUE offsets.
  bed.sim().runFor(Duration::seconds(10));
  const std::uint64_t action = bed.nextActionId();
  const TimePoint t0 = bed.sim().now();
  u1.client->performVisibleAction(action);
  bed.sim().runFor(Duration::seconds(3));
  const auto shown = u2.headset->firstDisplayLocal(action);
  ASSERT_TRUE(shown.has_value());
  const double truthMs =
      (*shown - u2.headset->trueClockOffset() - t0).toMillis();
  EXPECT_GT(truthMs, 40.0);
  EXPECT_LT(truthMs, 250.0);

  // Measured (probe machinery with estimated offsets): statistically equal.
  LatencyProbe probe{bed, u1, u2};
  probe.scheduleProbes(bed.sim().now() + Duration::seconds(2), 15);
  bed.sim().runFor(Duration::seconds(40));
  const LatencyStats stats = probe.collect();
  ASSERT_GT(stats.completed, 10);
  EXPECT_NEAR(stats.e2e.mean(), truthMs, 35.0);
  // Breakdown reconstructs E2E: components sum back to the total.
  EXPECT_NEAR(stats.sender.mean() + stats.server.mean() + stats.network.mean() +
                  stats.receiver.mean(),
              stats.e2e.mean(), 1.0);
}

// --------------------------------------------------------------- disruption

TEST(DisruptorTest, StagesApplyAndReset) {
  Testbed bed{41};
  bed.deploy(platforms::worlds());
  TestUser& u1 = bed.addUser();
  Disruptor d{bed, u1, Disruptor::Direction::Downlink};
  std::vector<DisruptionStage> stages = Disruptor::downlinkBandwidthStages();
  ASSERT_EQ(stages.size(), 6u);
  EXPECT_EQ(stages.front().config.rateLimit, DataRate::mbps(1.0));
  EXPECT_EQ(stages.back().config.rateLimit, DataRate::mbps(0.1));
  d.schedule(TimePoint::epoch() + Duration::seconds(1), stages);
  bed.sim().runFor(Duration::seconds(2));
  EXPECT_EQ(u1.downlinkNetem().config().rateLimit, DataRate::mbps(1.0));
  bed.sim().runFor(Duration::seconds(40));
  EXPECT_EQ(u1.downlinkNetem().config().rateLimit, DataRate::mbps(0.7));
  bed.sim().runFor(Duration::seconds(250));
  EXPECT_TRUE(u1.downlinkNetem().config().isTransparent());  // reset
}

TEST(DisruptorTest, TcpOnlyStagesCarryTheFilter) {
  const auto stages = Disruptor::tcpOnlyStages();
  ASSERT_EQ(stages.size(), 4u);
  for (const auto& s : stages) {
    EXPECT_EQ(s.config.filter, NetemFilter::TcpOnly);
    EXPECT_EQ(s.duration, Duration::seconds(60));
  }
  EXPECT_DOUBLE_EQ(stages.back().config.lossRate, 1.0);
}

TEST(DisruptionTest, DownlinkThrottleCapsAndRecovers) {
  const DisruptionTimeline d =
      runWorldsDisruption(DisruptionKind::DownlinkBandwidth, 11);
  auto window = [&](const std::vector<double>& v, int a, int b) {
    double s = 0;
    for (int i = a; i < b; ++i) s += v[i];
    return s / (b - a);
  };
  EXPECT_NEAR(window(d.udpDownKbps, 250, 275), 100, 30);   // 0.1 Mbps stage
  EXPECT_GT(window(d.udpDownKbps, 300, 330), 500);         // recovered
  EXPECT_GT(window(d.cpuPct, 250, 275), 90);               // CPU pinned
  EXPECT_LT(window(d.fps, 250, 275), 60);                  // FPS degraded
  EXPECT_GT(window(d.staleFps, 250, 275), 5);              // stale frames
  EXPECT_FALSE(d.screenFrozeAtEnd);                        // survives
}

TEST(DisruptionTest, TcpBlackoutBreaksUdpForGood) {
  const DisruptionTimeline d =
      runWorldsDisruption(DisruptionKind::TcpUplinkOnly, 11);
  EXPECT_TRUE(d.screenFrozeAtEnd);
  // Break happens during the 100%-loss stage [300 = 60+240 in sim time).
  EXPECT_GT(d.frozeAtSec, 240.0);
  EXPECT_LT(d.frozeAtSec, 300.0);
  // UDP uplink never comes back after the reset at 300 s.
  double udpAfter = 0;
  for (std::size_t i = 310; i < 350 && i < d.udpUpKbps.size(); ++i) {
    udpAfter += d.udpUpKbps[i];
  }
  EXPECT_LT(udpAfter / 40.0, 5.0);
}

// -------------------------------------------------------------------- §8.2

TEST(PerceptionTest, LatencyThresholds) {
  const PerceptionRow ok =
      runLatencyLossPerception(platforms::recRoom(), 50.0, 0.0, 3);
  EXPECT_FALSE(ok.walkChatImpaired);  // ~100 + 50 < 300 ms
  const PerceptionRow bad =
      runLatencyLossPerception(platforms::recRoom(), 300.0, 0.0, 3);
  EXPECT_TRUE(bad.walkChatImpaired);
  // AltspaceVR sits near 210 ms already: +100 ms crosses the line.
  const PerceptionRow alt =
      runLatencyLossPerception(platforms::altspaceVR(), 100.0, 0.0, 3);
  EXPECT_TRUE(alt.walkChatImpaired);
}

TEST(PerceptionTest, LossUpTo20PercentTolerated) {
  const PerceptionRow row =
      runLatencyLossPerception(platforms::vrchat(), 0.0, 20.0, 3);
  EXPECT_FALSE(row.walkChatImpaired);
  EXPECT_GT(row.staleAvatarRatio, 0.05);  // updates are being lost...
  EXPECT_LT(row.staleAvatarRatio, 0.5);   // ...but most still arrive
}

// -------------------------------------------------------------------- §5.2

TEST(DownloadTest, PerPlatformBehaviour) {
  const DownloadTrace rec = runDownloadTrace(platforms::recRoom(), 3);
  EXPECT_LT(rec.launchDownloadMB, 1.0);  // pre-bundled app
  const DownloadTrace alt = runDownloadTrace(platforms::altspaceVR(), 3);
  EXPECT_NEAR(alt.launchDownloadMB, 20.0, 5.0);
  const DownloadTrace worlds = runDownloadTrace(platforms::worlds(), 3);
  EXPECT_NEAR(worlds.launchDownloadMB, 5.0, 2.0);
  const DownloadTrace hubs = runDownloadTrace(platforms::hubs(), 3);
  EXPECT_NEAR(hubs.joinDownloadMB, 20.0, 5.0);  // per-join re-download
  EXPECT_FALSE(hubs.cachesBackground);
}

}  // namespace
}  // namespace msim
