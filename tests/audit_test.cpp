// The runtime half of the determinism verification layer: FNV digest
// chaining, the Simulator audit hook, RNG draw accounting, and the
// cross-thread-count sweep verifier. The headline tests run full testbed and
// cluster scenarios audited under MSIM_THREADS-style worker counts 1, 2, and
// 8 and require byte-identical fingerprints; the sensitivity tests show the
// digest actually moves when event order or content changes (so an
// unordered-iteration bug cannot hide).

#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <vector>

#include "audit/sweep.hpp"
#include "avatar/codec.hpp"
#include "cluster/manager.hpp"
#include "core/seedsweep.hpp"
#include "core/testbed.hpp"

namespace msim {
namespace {

using audit::Digest;
using audit::RunFingerprint;

// ------------------------------------------------------------------ digest

TEST(DigestTest, ChainIsOrderSensitive) {
  Digest a;
  a.mix(std::uint64_t{1});
  a.mix(std::uint64_t{2});
  Digest b;
  b.mix(std::uint64_t{2});
  b.mix(std::uint64_t{1});
  EXPECT_NE(a.value(), b.value());

  Digest c;
  c.mix(std::uint64_t{1});
  c.mix(std::uint64_t{2});
  EXPECT_EQ(a.value(), c.value());
}

TEST(DigestTest, StringAndResetBehave) {
  Digest a;
  a.mix("pose-update");
  const std::uint64_t first = a.value();
  a.reset();
  a.mix("pose-update");
  EXPECT_EQ(a.value(), first);
  a.mix("x");
  EXPECT_NE(a.value(), first);
}

TEST(DigestTest, FirstDivergenceFindsTheExactIndex) {
  const audit::Trail a{10, 20, 30, 40};
  audit::Trail b = a;
  EXPECT_EQ(audit::firstDivergence(a, b), audit::kNoDivergence);
  b[2] = 31;
  EXPECT_EQ(audit::firstDivergence(a, b), 2u);
  // Length mismatch with identical prefix: diverges at the shorter length.
  const audit::Trail c{10, 20};
  EXPECT_EQ(audit::firstDivergence(a, c), 2u);
  // Empty trails carry no per-event information.
  EXPECT_EQ(audit::firstDivergence({}, {}), audit::kNoDivergence);
}

// ----------------------------------------------------------- auditor hook

TEST(AuditorTest, TrailRecordsOneChainValuePerEvent) {
  audit::EventAuditor auditor{/*recordTrail=*/true};
  auditor.onEvent(1000, 1);
  auditor.onEvent(2000, 2);
  auditor.onEvent(2000, 3);
  EXPECT_EQ(auditor.eventCount(), 3u);
  ASSERT_EQ(auditor.trail().size(), 3u);
  EXPECT_EQ(auditor.trail().back(), auditor.digest());
  // The chain must distinguish same-time events by their audit stamps.
  audit::EventAuditor other{true};
  other.onEvent(1000, 1);
  other.onEvent(2000, 2);
  other.onEvent(2000, 4);  // same time, different stamp
  EXPECT_NE(other.digest(), auditor.digest());
}

TEST(SimulatorAuditTest, SameSeedSameDigestAndDisabledIsZero) {
  auto run = [](std::uint64_t seed, int extraEvents) {
    Simulator sim{seed};
    sim.enableAudit();
    for (int i = 0; i < 10 + extraEvents; ++i) {
      sim.scheduleAfter(Duration::millis(10 * (i + 1)), [&sim] {
        sim.auditNote(sim.rng().uniformInt(0, 1'000'000));
      });
    }
    sim.runFor(Duration::seconds(1));
    return sim.auditDigest();
  };
  EXPECT_EQ(run(7, 0), run(7, 0));
  EXPECT_NE(run(7, 0), run(8, 0));
  EXPECT_NE(run(7, 0), run(7, 1));  // one extra event moves the digest

  Simulator sim{7};
  EXPECT_FALSE(sim.auditEnabled());
  EXPECT_EQ(sim.auditDigest(), 0u);
}

TEST(SimulatorAuditTest, DigestCatchesIterationOrderChanges) {
  // The failure mode detlint exists to prevent, reproduced in miniature: two
  // runs identical except for the order a container is visited in. The
  // digest must separate them — this is what makes the audit layer able to
  // catch an unordered_map range-for that detlint missed.
  auto run = [](bool reversed) {
    Simulator sim{1};
    sim.enableAudit();
    const std::vector<std::uint64_t> ids{11, 22, 33};
    sim.scheduleAfter(Duration::millis(1), [&] {
      if (reversed) {
        for (auto it = ids.rbegin(); it != ids.rend(); ++it) sim.auditNote(*it);
      } else {
        for (const std::uint64_t id : ids) sim.auditNote(id);
      }
    });
    sim.runFor(Duration::millis(10));
    return sim.auditDigest();
  };
  EXPECT_NE(run(false), run(true));
}

TEST(SimulatorAuditTest, RngDrawCountersFoldIntoTheDigest) {
  Rng rng{42};
  EXPECT_EQ(rng.draws(), 0u);
  (void)rng.uniform(0.0, 1.0);
  (void)rng.uniformInt(1, 6);
  (void)rng.exponential(2.0);
  EXPECT_EQ(rng.draws(), 3u);
  rng.reseed(42);
  EXPECT_EQ(rng.draws(), 0u);

  // Two audited runs with identical event streams but different RNG use must
  // differ: the draw counter is part of auditDigest().
  auto run = [](bool extraDraw) {
    Simulator sim{5};
    sim.enableAudit();
    sim.scheduleAfter(Duration::millis(1), [&] {
      (void)sim.rng().uniform(0.0, 1.0);
      if (extraDraw) (void)sim.rng().uniform(0.0, 1.0);
    });
    sim.runFor(Duration::millis(10));
    return sim.auditDigest();
  };
  EXPECT_NE(run(false), run(true));
}

// ------------------------------------------- audited testbed seed sweep

/// The full-stack scenario from determinism_test, audited: launch, join,
/// avatar/voice streams, control downloads — fingerprinted by the kernel
/// hook rather than by hand-rolled trace hashing.
RunFingerprint auditedTestbedRun(std::uint64_t seed) {
  Testbed bed{seed};
  bed.sim().enableAudit(/*recordTrail=*/true);
  bed.deploy(platforms::vrchat());
  TestUserConfig cfg;
  cfg.muted = true;
  for (int i = 0; i < 3; ++i) bed.addUser(cfg);

  Simulator& sim = bed.sim();
  sim.schedule(TimePoint::epoch(), [&] {
    for (auto& u : bed.users()) u->client->launch();
  });
  for (int i = 0; i < 3; ++i) {
    sim.schedule(TimePoint::epoch() + Duration::seconds(2 + i),
                 [&, i] { bed.user(i).client->joinEvent(); });
  }
  sim.runFor(Duration::seconds(6));
  return sim.auditFingerprint();
}

TEST(AuditSweepTest, TestbedDigestsIdenticalAcrossThreadCounts) {
  const auto seeds = defaultSeeds(3);
  for (const unsigned threads : {2u, 8u}) {
    const auto report =
        audit::verifyThreadInvariance(seeds, auditedTestbedRun, 1, threads);
    EXPECT_TRUE(report.identical) << report.describe();
  }
}

TEST(AuditSweepTest, FingerprintIsNotDegenerate) {
  const auto a = auditedTestbedRun(1000);
  const auto b = auditedTestbedRun(8919);
  EXPECT_GT(a.events, 100u);  // the scenario genuinely dispatches events
  EXPECT_EQ(a.trail.size(), a.events);
  EXPECT_FALSE(a == b);  // different seeds produce different fingerprints
}

// --------------------------------------------- audited cluster seed sweep

RunFingerprint auditedClusterRun(std::uint64_t seed) {
  Simulator sim{seed};
  sim.enableAudit(/*recordTrail=*/true);
  cluster::ClusterConfig cfg;
  cfg.initialInstances = 3;
  cfg.policy = cluster::PlacementPolicy::LeastLoaded;
  cfg.capacity.cpuPerForwardUs = 200.0;
  cfg.capacity.cores = 1.0;
  DataSpec spec;
  spec.provisioningFactor = 1.0;
  cluster::InstanceManager mgr{sim, spec, cfg};

  mgr.setDeliverySink([&sim](std::uint32_t inst, std::uint64_t toUser,
                             const Message& m) {
    sim.auditNote((static_cast<std::uint64_t>(inst) << 48) ^ toUser);
    sim.auditNote(m.sequence);
  });

  const int users = 10;
  for (std::uint64_t u = 1; u <= users; ++u) {
    mgr.joinUser(u, regions::usEast());
  }
  std::vector<std::uint64_t> seqs(users + 1, 0);
  std::vector<std::unique_ptr<PeriodicTask>> senders;
  for (std::uint64_t u = 1; u <= users; ++u) {
    senders.push_back(std::make_unique<PeriodicTask>(
        sim, Duration::millis(100), [&mgr, &seqs, u] {
          if (RelayRoom* room = mgr.roomOf(u)) {
            Message m;
            m.kind = avatarmsg::kPoseUpdate;
            m.size = ByteSize::bytes(220);
            m.senderId = u;
            m.sequence = ++seqs[u];
            room->broadcast(u, m);
          }
        }));
  }
  sim.schedule(TimePoint::epoch() + Duration::seconds(2),
               [&mgr] { mgr.drain(2); });
  sim.runFor(Duration::seconds(4));
  return sim.auditFingerprint();
}

TEST(AuditSweepTest, ClusterDigestsIdenticalAcrossThreadCounts) {
  const auto seeds = defaultSeeds(3);
  for (const unsigned threads : {2u, 8u}) {
    const auto report =
        audit::verifyThreadInvariance(seeds, auditedClusterRun, 1, threads);
    EXPECT_TRUE(report.identical) << report.describe();
  }
}

TEST(AuditSweepTest, DivergenceReportNamesSeedAndEvent) {
  // Feed the verifier a scenario that cannot diverge, then check the report
  // plumbing directly on synthetic fingerprints (a real divergence would be
  // a kernel bug, which other tests exist to catch).
  const audit::Trail a{1, 2, 3, 4};
  const audit::Trail b{1, 2, 9, 4};
  EXPECT_EQ(audit::firstDivergence(a, b), 2u);

  audit::ThreadInvarianceReport report;
  report.identical = false;
  report.threadsA = 1;
  report.threadsB = 8;
  report.seedIndex = 1;
  report.seed = 8919;
  report.firstEventIndex = 2;
  report.digestA = 0xabc;
  report.digestB = 0xdef;
  const std::string text = report.describe();
  EXPECT_NE(text.find("8919"), std::string::npos);
  EXPECT_NE(text.find("event 2"), std::string::npos);
  EXPECT_NE(text.find("8 threads"), std::string::npos);
}

}  // namespace
}  // namespace msim
