// Tests for msim::pdes — conservative parallel simulation of one run — and
// its supporting layers: the process-wide ThreadBudget ledger, the event
// queue's nextEventTimeLowerBound() (the EOT seed), and the partitioned
// cluster workload. The load-bearing property throughout is the PR's
// acceptance criterion: audit digests are byte-identical for ANY worker
// count, including under mid-run migration and adversarially small
// lookahead. These tests run in the TSan CI job with MSIM_THREADS=4, so the
// barrier protocol is exercised with real parallelism and scheduler
// perturbation.

#include <gtest/gtest.h>

#include <cstdint>
#include <stdexcept>
#include <utility>
#include <vector>

#include "audit/sweep.hpp"
#include "avatar/codec.hpp"
#include "avatar/spec.hpp"
#include "cluster/partitioned.hpp"
#include "core/seedsweep.hpp"
#include "pdes/pdes.hpp"
#include "sim/simulator.hpp"
#include "util/threadbudget.hpp"

namespace {

using namespace msim;

// ---------------------------------------------------------- thread budget

TEST(ThreadBudget, CapacityFloorsAtOne) {
  ThreadBudget budget{0};
  EXPECT_EQ(budget.capacity(), 1u);
  EXPECT_EQ(budget.acquire(4), 0u);  // nothing beyond the calling thread
  EXPECT_EQ(budget.extraInUse(), 0u);
}

TEST(ThreadBudget, GrantsUpToCapacityMinusOne) {
  ThreadBudget budget{4};
  EXPECT_EQ(budget.acquire(10), 3u);
  EXPECT_EQ(budget.extraInUse(), 3u);
  EXPECT_EQ(budget.acquire(1), 0u);  // exhausted, non-blocking
  budget.release(3);
  EXPECT_EQ(budget.extraInUse(), 0u);
}

TEST(ThreadBudget, NestedLeasesShareTheLedger) {
  // The seed-sweep / PDES composition: an outer layer takes some workers,
  // the nested engine gets only what is left, and everything returns on
  // scope exit.
  ThreadBudget budget{4};
  {
    const ThreadBudget::Lease outer{budget, 2};
    EXPECT_EQ(outer.granted(), 2u);
    EXPECT_EQ(outer.workers(), 3u);
    {
      const ThreadBudget::Lease inner{budget, 5};
      EXPECT_EQ(inner.granted(), 1u);  // capacity 4 - main - 2 outer
      EXPECT_EQ(inner.workers(), 2u);
    }
    EXPECT_EQ(budget.extraInUse(), 2u);
  }
  EXPECT_EQ(budget.extraInUse(), 0u);
}

// ------------------------------------------------- event-time lower bound

TEST(PdesLowerBound, EmptyQueueIsMax) {
  Simulator sim{1};
  EXPECT_EQ(sim.nextEventTimeLowerBound(), TimePoint::max());
}

TEST(PdesLowerBound, ExactForPlainSchedules) {
  Simulator sim{1};
  sim.scheduleAfter(Duration::millis(5), [] {});
  sim.scheduleAfter(Duration::micros(40), [] {});
  sim.scheduleAfter(Duration::seconds(2), [] {});
  EXPECT_EQ(sim.nextEventTimeLowerBound(),
            TimePoint::epoch() + Duration::micros(40));

  sim.runFor(Duration::millis(1));  // consumes the 40us event
  EXPECT_EQ(sim.nextEventTimeLowerBound(),
            TimePoint::epoch() + Duration::millis(5));
}

TEST(PdesLowerBound, ConservativeUnderCancellation) {
  // Cancelling the earliest event leaves a tombstone; the bound may then be
  // early (the lane window start) but must never overshoot the true next
  // event — overshooting would let a neighbor execute past a real arrival.
  Simulator sim{1};
  const auto id = sim.scheduleAfter(Duration::micros(100), [] {});
  sim.scheduleAfter(Duration::micros(300), [] {});
  sim.cancel(id);
  const TimePoint lb = sim.nextEventTimeLowerBound();
  EXPECT_LE(lb, TimePoint::epoch() + Duration::micros(300));

  sim.run();
  EXPECT_EQ(sim.nextEventTimeLowerBound(), TimePoint::max());
}

// ----------------------------------------------------------- engine rules

TEST(PdesEngine, SendWithoutLinkThrows) {
  pdes::Engine engine{2, 1};
  EXPECT_THROW(engine.partition(0).send(
                   1, TimePoint::epoch() + Duration::seconds(1), [] {}),
               std::logic_error);
}

TEST(PdesEngine, LookaheadBreachThrows) {
  pdes::Engine engine{2, 1};
  engine.link(0, 1, Duration::millis(10));
  // Arrival 1ms out violates the 10ms promise the engine planned around.
  EXPECT_THROW(engine.partition(0).send(
                   1, TimePoint::epoch() + Duration::millis(1), [] {}),
               std::logic_error);
  // At exactly now + lookahead it is legal.
  engine.partition(0).send(1, TimePoint::epoch() + Duration::millis(10),
                           [] {});
  const pdes::RunReport report = engine.run(TimePoint::epoch() +
                                            Duration::millis(20));
  EXPECT_EQ(report.messagesDelivered, 1u);
}

TEST(PdesEngine, DeliversInCanonicalOrder) {
  // Partitions 1 and 2 both land messages on partition 0 at the SAME
  // instant. Injection order must be (recvTime, src, srcSeq) regardless of
  // which worker ran the senders, so the recorded order is fixed.
  pdes::Engine engine{3, 1};
  engine.link(1, 0, Duration::millis(1));
  engine.link(2, 0, Duration::millis(1));

  auto order = std::make_shared<std::vector<int>>();
  const TimePoint at = TimePoint::epoch() + Duration::millis(5);
  // Sends from src 2 are issued before src 1's, and out of seq order per
  // source; canonical injection re-establishes (src, srcSeq).
  engine.partition(2).send(0, at, [order] { order->push_back(20); });
  engine.partition(2).send(0, at, [order] { order->push_back(21); });
  engine.partition(1).send(0, at, [order] { order->push_back(10); });
  engine.partition(1).send(0, at, [order] { order->push_back(11); });

  engine.run(TimePoint::epoch() + Duration::millis(10));
  ASSERT_EQ(order->size(), 4u);
  EXPECT_EQ(*order, (std::vector<int>{10, 11, 20, 21}));
}

TEST(PdesEngine, PingPongAdvancesBothClocksToLimit) {
  pdes::Engine engine{2, 1};
  engine.link(0, 1, Duration::millis(1));
  engine.link(1, 0, Duration::millis(1));

  // Each hop re-sends from the destination's event context; hops stop once
  // past 10ms. The counter lives on partition 0's side of the protocol and
  // is only ever touched by messages executing there... except the bounce
  // touches it on 1 as well — so count per partition.
  auto hops0 = std::make_shared<int>(0);
  auto hops1 = std::make_shared<int>(0);
  struct Bouncer {
    pdes::Engine& engine;
    std::shared_ptr<int> hops0, hops1;
    void bounce(std::uint32_t self) {
      const std::uint32_t other = 1 - self;
      pdes::Partition& p = engine.partition(self);
      ++(self == 0 ? *hops0 : *hops1);
      const TimePoint next = p.sim().now() + Duration::millis(1);
      if (next > TimePoint::epoch() + Duration::millis(10)) return;
      p.send(other, next, [this, other] { bounce(other); });
    }
  };
  auto bouncer = std::make_shared<Bouncer>(Bouncer{engine, hops0, hops1});
  engine.partition(0).sim().schedule(TimePoint::epoch() + Duration::millis(1),
                                     [bouncer] { bouncer->bounce(0); });

  const TimePoint limit = TimePoint::epoch() + Duration::millis(20);
  engine.run(limit);
  EXPECT_EQ(engine.partition(0).sim().now(), limit);
  EXPECT_EQ(engine.partition(1).sim().now(), limit);
  // Hops at 1..10ms: odd ms on partition 0, even on partition 1.
  EXPECT_EQ(*hops0, 5);
  EXPECT_EQ(*hops1, 5);
}

TEST(PdesEngine, RunIsResumableWithIncreasingLimits) {
  pdes::Engine engine{2, 1};
  engine.link(0, 1, Duration::millis(2));
  auto fired = std::make_shared<int>(0);
  engine.partition(0).send(1, TimePoint::epoch() + Duration::millis(15),
                           [fired] { ++*fired; });

  engine.run(TimePoint::epoch() + Duration::millis(10));
  EXPECT_EQ(*fired, 0);
  engine.run(TimePoint::epoch() + Duration::millis(20));
  EXPECT_EQ(*fired, 1);
}

// ------------------------------------------- determinism across workers

// A synthetic multi-partition workload with RNG-driven local events and
// cross-partition chatter: partition i ticks every ~37us for `horizon`,
// folds random draws into its audit chain, and occasionally messages the
// next partition in the ring.
audit::RunFingerprint ringWorkload(std::uint64_t seed, unsigned threads,
                                   Duration lookahead, Duration horizon) {
  constexpr std::uint32_t kParts = 5;
  pdes::EngineConfig cfg;
  cfg.threads = threads;
  cfg.audit = true;
  pdes::Engine engine{kParts, seed, cfg};
  for (std::uint32_t i = 0; i < kParts; ++i) {
    engine.link(i, (i + 1) % kParts, lookahead);
  }

  struct Ticker {
    pdes::Engine& engine;
    Duration lookahead;
    Duration horizon;
    void tick(std::uint32_t id) {
      pdes::Partition& p = engine.partition(id);
      Simulator& sim = p.sim();
      const std::uint64_t draw =
          static_cast<std::uint64_t>(sim.rng().uniformInt(0, 1 << 20));
      sim.auditNote(draw);
      if (draw % 7 == 0) {
        const std::uint32_t next = (id + 1) % 5;
        p.send(next, sim.now() + lookahead,
               [this, next] { engine.partition(next).sim().auditNote(next); });
      }
      const TimePoint at = sim.now() + Duration::micros(37);
      if (at > TimePoint::epoch() + horizon) return;
      sim.schedule(at, [this, id] { tick(id); });
    }
  };
  auto ticker = std::make_shared<Ticker>(Ticker{engine, lookahead, horizon});
  for (std::uint32_t i = 0; i < kParts; ++i) {
    engine.partition(i).sim().schedule(
        TimePoint::epoch() + Duration::micros(7 * (i + 1)),
        [ticker, i] { ticker->tick(i); });
  }
  engine.run(TimePoint::epoch() + horizon + lookahead);
  return engine.auditFingerprint();
}

TEST(PdesDeterminism, EngineDigestInvariantAcrossWorkerCounts) {
  const auto base =
      ringWorkload(42, 1, Duration::millis(1), Duration::millis(20));
  ASSERT_NE(base.digest, 0u);
  for (unsigned threads : {2u, 4u, 8u}) {
    const auto fp =
        ringWorkload(42, threads, Duration::millis(1), Duration::millis(20));
    EXPECT_EQ(fp.digest, base.digest) << "threads=" << threads;
  }
}

TEST(PdesDeterminism, LowLookaheadStressTerminatesAndMatches) {
  // Lookahead comparable to the local event spacing (40us vs 37us ticks)
  // forces thousands of tiny synchronization windows around a cycle — the
  // regime where a deadlocked or off-by-one protocol would hang or diverge.
  const auto base =
      ringWorkload(7, 1, Duration::micros(40), Duration::millis(4));
  const auto parallel =
      ringWorkload(7, 4, Duration::micros(40), Duration::millis(4));
  EXPECT_EQ(base.digest, parallel.digest);
}

// ------------------------------------------------- partitioned cluster

cluster::PartitionedClusterConfig smallClusterConfig(std::uint64_t seed,
                                                     unsigned threads) {
  cluster::PartitionedClusterConfig cfg;
  cfg.seed = seed;
  cfg.users = 90;
  cfg.shards = 6;
  cfg.threads = threads;
  const AvatarSpec avatar;
  cfg.updateProto.kind = avatarmsg::kPoseUpdate;
  cfg.updateProto.size = avatar.bytesPerUpdate;
  cfg.updateRateHz = avatar.updateRateHz;
  return cfg;
}

struct ClusterRunResult {
  cluster::PartitionedClusterStats stats;
  audit::RunFingerprint fp;
};

ClusterRunResult runSmallCluster(std::uint64_t seed, unsigned threads) {
  cluster::PartitionedCluster run{smallClusterConfig(seed, threads)};
  // Drain the last shard mid-measurement: migration hops cross partitions
  // while update traffic is live.
  run.scheduleDrain(5, TimePoint::epoch() + Duration::millis(250));
  ClusterRunResult out;
  out.stats = run.run(Duration::millis(500), Duration::seconds(1));
  out.fp = run.fingerprint();
  return out;
}

TEST(PdesCluster, DigestInvariantAcrossThreadsWithMigration) {
  const ClusterRunResult base = runSmallCluster(1234, 1);
  ASSERT_NE(base.fp.digest, 0u);
  EXPECT_GT(base.stats.broadcasts, 0u);
  EXPECT_EQ(base.stats.expectedDeliveries, base.stats.delivered);
  EXPECT_EQ(base.stats.migrations, 1u);
  EXPECT_GT(base.stats.migratedUsers, 0u);

  for (unsigned threads : {2u, 4u, 8u}) {
    const ClusterRunResult r = runSmallCluster(1234, threads);
    EXPECT_EQ(r.fp.digest, base.fp.digest) << "threads=" << threads;
    EXPECT_EQ(r.stats.delivered, base.stats.delivered)
        << "threads=" << threads;
    EXPECT_EQ(r.stats.migratedUsers, base.stats.migratedUsers)
        << "threads=" << threads;
    EXPECT_EQ(r.stats.engine.rounds, base.stats.engine.rounds)
        << "threads=" << threads;
  }
}

TEST(PdesCluster, VerifyThreadInvarianceComposesWithSeedSweep) {
  // The full PR-3 + PR-6 stack: a seed sweep whose per-seed scenario is
  // itself a parallel PDES run with threads=0, so nested engines lease
  // whatever the sweep left in the process ThreadBudget. The verifier runs
  // the sweep at 1 thread and at the MSIM_THREADS default and demands
  // byte-identical fingerprints per seed.
  const std::vector<std::uint64_t> seeds = defaultSeeds(2);
  const auto report = audit::verifyThreadInvariance(
      seeds,
      [](std::uint64_t seed) {
        cluster::PartitionedCluster run{smallClusterConfig(seed, 0)};
        run.scheduleDrain(2, TimePoint::epoch() + Duration::millis(100));
        (void)run.run(Duration::millis(200), Duration::millis(500));
        return run.fingerprint();
      });
  EXPECT_TRUE(report.identical) << report.describe();
}

}  // namespace
