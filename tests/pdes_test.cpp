// Tests for msim::pdes — conservative parallel simulation of one run — and
// its supporting layers: the process-wide ThreadBudget ledger, the event
// queue's nextEventTimeLowerBound() (the EOT seed), and the partitioned
// cluster workload. The load-bearing property throughout is the PR's
// acceptance criterion: audit digests are byte-identical for ANY worker
// count, including under mid-run migration and adversarially small
// lookahead. These tests run in the TSan CI job with MSIM_THREADS=4, so the
// barrier protocol is exercised with real parallelism and scheduler
// perturbation.

#include <gtest/gtest.h>

#include <cstdint>
#include <stdexcept>
#include <utility>
#include <vector>

#include "audit/sweep.hpp"
#include "avatar/codec.hpp"
#include "avatar/spec.hpp"
#include "cluster/partitioned.hpp"
#include "core/seedsweep.hpp"
#include "pdes/pdes.hpp"
#include "sim/simulator.hpp"
#include "util/threadbudget.hpp"

namespace {

using namespace msim;

// ---------------------------------------------------------- thread budget

TEST(ThreadBudget, CapacityFloorsAtOne) {
  ThreadBudget budget{0};
  EXPECT_EQ(budget.capacity(), 1u);
  EXPECT_EQ(budget.acquire(4), 0u);  // nothing beyond the calling thread
  EXPECT_EQ(budget.extraInUse(), 0u);
}

TEST(ThreadBudget, GrantsUpToCapacityMinusOne) {
  ThreadBudget budget{4};
  EXPECT_EQ(budget.acquire(10), 3u);
  EXPECT_EQ(budget.extraInUse(), 3u);
  EXPECT_EQ(budget.acquire(1), 0u);  // exhausted, non-blocking
  budget.release(3);
  EXPECT_EQ(budget.extraInUse(), 0u);
}

TEST(ThreadBudget, NestedLeasesShareTheLedger) {
  // The seed-sweep / PDES composition: an outer layer takes some workers,
  // the nested engine gets only what is left, and everything returns on
  // scope exit.
  ThreadBudget budget{4};
  {
    const ThreadBudget::Lease outer{budget, 2};
    EXPECT_EQ(outer.granted(), 2u);
    EXPECT_EQ(outer.workers(), 3u);
    {
      const ThreadBudget::Lease inner{budget, 5};
      EXPECT_EQ(inner.granted(), 1u);  // capacity 4 - main - 2 outer
      EXPECT_EQ(inner.workers(), 2u);
    }
    EXPECT_EQ(budget.extraInUse(), 2u);
  }
  EXPECT_EQ(budget.extraInUse(), 0u);
}

// ------------------------------------------------- event-time lower bound

TEST(PdesLowerBound, EmptyQueueIsMax) {
  Simulator sim{1};
  EXPECT_EQ(sim.nextEventTimeLowerBound(), TimePoint::max());
}

TEST(PdesLowerBound, ExactForPlainSchedules) {
  Simulator sim{1};
  sim.scheduleAfter(Duration::millis(5), [] {});
  sim.scheduleAfter(Duration::micros(40), [] {});
  sim.scheduleAfter(Duration::seconds(2), [] {});
  EXPECT_EQ(sim.nextEventTimeLowerBound(),
            TimePoint::epoch() + Duration::micros(40));

  sim.runFor(Duration::millis(1));  // consumes the 40us event
  EXPECT_EQ(sim.nextEventTimeLowerBound(),
            TimePoint::epoch() + Duration::millis(5));
}

TEST(PdesLowerBound, ConservativeUnderCancellation) {
  // Cancelling the earliest event leaves a tombstone; the bound may then be
  // early (the lane window start) but must never overshoot the true next
  // event — overshooting would let a neighbor execute past a real arrival.
  Simulator sim{1};
  const auto id = sim.scheduleAfter(Duration::micros(100), [] {});
  sim.scheduleAfter(Duration::micros(300), [] {});
  sim.cancel(id);
  const TimePoint lb = sim.nextEventTimeLowerBound();
  EXPECT_LE(lb, TimePoint::epoch() + Duration::micros(300));

  sim.run();
  EXPECT_EQ(sim.nextEventTimeLowerBound(), TimePoint::max());
}

// ----------------------------------------------------------- engine rules

TEST(PdesEngine, SendWithoutLinkThrows) {
  pdes::Engine engine{2, 1};
  EXPECT_THROW(engine.partition(0).send(
                   1, TimePoint::epoch() + Duration::seconds(1), [] {}),
               std::logic_error);
}

TEST(PdesEngine, LookaheadBreachThrows) {
  pdes::Engine engine{2, 1};
  engine.link(0, 1, Duration::millis(10));
  // Arrival 1ms out violates the 10ms promise the engine planned around.
  EXPECT_THROW(engine.partition(0).send(
                   1, TimePoint::epoch() + Duration::millis(1), [] {}),
               std::logic_error);
  // At exactly now + lookahead it is legal.
  engine.partition(0).send(1, TimePoint::epoch() + Duration::millis(10),
                           [] {});
  const pdes::RunReport report = engine.run(TimePoint::epoch() +
                                            Duration::millis(20));
  EXPECT_EQ(report.messagesDelivered, 1u);
}

TEST(PdesEngine, DeliversInCanonicalOrder) {
  // Partitions 1 and 2 both land messages on partition 0 at the SAME
  // instant. Injection order must be (recvTime, src, srcSeq) regardless of
  // which worker ran the senders, so the recorded order is fixed.
  pdes::Engine engine{3, 1};
  engine.link(1, 0, Duration::millis(1));
  engine.link(2, 0, Duration::millis(1));

  auto order = std::make_shared<std::vector<int>>();
  const TimePoint at = TimePoint::epoch() + Duration::millis(5);
  // Sends from src 2 are issued before src 1's, and out of seq order per
  // source; canonical injection re-establishes (src, srcSeq).
  engine.partition(2).send(0, at, [order] { order->push_back(20); });
  engine.partition(2).send(0, at, [order] { order->push_back(21); });
  engine.partition(1).send(0, at, [order] { order->push_back(10); });
  engine.partition(1).send(0, at, [order] { order->push_back(11); });

  engine.run(TimePoint::epoch() + Duration::millis(10));
  ASSERT_EQ(order->size(), 4u);
  EXPECT_EQ(*order, (std::vector<int>{10, 11, 20, 21}));
}

TEST(PdesEngine, PingPongAdvancesBothClocksToLimit) {
  pdes::Engine engine{2, 1};
  engine.link(0, 1, Duration::millis(1));
  engine.link(1, 0, Duration::millis(1));

  // Each hop re-sends from the destination's event context; hops stop once
  // past 10ms. The counter lives on partition 0's side of the protocol and
  // is only ever touched by messages executing there... except the bounce
  // touches it on 1 as well — so count per partition.
  auto hops0 = std::make_shared<int>(0);
  auto hops1 = std::make_shared<int>(0);
  struct Bouncer {
    pdes::Engine& engine;
    std::shared_ptr<int> hops0, hops1;
    void bounce(std::uint32_t self) {
      const std::uint32_t other = 1 - self;
      pdes::Partition& p = engine.partition(self);
      ++(self == 0 ? *hops0 : *hops1);
      const TimePoint next = p.sim().now() + Duration::millis(1);
      if (next > TimePoint::epoch() + Duration::millis(10)) return;
      p.send(other, next, [this, other] { bounce(other); });
    }
  };
  auto bouncer = std::make_shared<Bouncer>(Bouncer{engine, hops0, hops1});
  engine.partition(0).sim().schedule(TimePoint::epoch() + Duration::millis(1),
                                     [bouncer] { bouncer->bounce(0); });

  const TimePoint limit = TimePoint::epoch() + Duration::millis(20);
  engine.run(limit);
  EXPECT_EQ(engine.partition(0).sim().now(), limit);
  EXPECT_EQ(engine.partition(1).sim().now(), limit);
  // Hops at 1..10ms: odd ms on partition 0, even on partition 1.
  EXPECT_EQ(*hops0, 5);
  EXPECT_EQ(*hops1, 5);
}

TEST(PdesEngine, RunIsResumableWithIncreasingLimits) {
  pdes::Engine engine{2, 1};
  engine.link(0, 1, Duration::millis(2));
  auto fired = std::make_shared<int>(0);
  engine.partition(0).send(1, TimePoint::epoch() + Duration::millis(15),
                           [fired] { ++*fired; });

  engine.run(TimePoint::epoch() + Duration::millis(10));
  EXPECT_EQ(*fired, 0);
  engine.run(TimePoint::epoch() + Duration::millis(20));
  EXPECT_EQ(*fired, 1);
}

// ------------------------------------------- determinism across workers

// A synthetic multi-partition workload with RNG-driven local events and
// cross-partition chatter: partition i ticks every ~37us for `horizon`,
// folds random draws into its audit chain, and occasionally messages the
// next partition in the ring.
audit::RunFingerprint ringWorkload(std::uint64_t seed, unsigned threads,
                                   Duration lookahead, Duration horizon) {
  constexpr std::uint32_t kParts = 5;
  pdes::EngineConfig cfg;
  cfg.threads = threads;
  cfg.audit = true;
  pdes::Engine engine{kParts, seed, cfg};
  for (std::uint32_t i = 0; i < kParts; ++i) {
    engine.link(i, (i + 1) % kParts, lookahead);
  }

  struct Ticker {
    pdes::Engine& engine;
    Duration lookahead;
    Duration horizon;
    void tick(std::uint32_t id) {
      pdes::Partition& p = engine.partition(id);
      Simulator& sim = p.sim();
      const std::uint64_t draw =
          static_cast<std::uint64_t>(sim.rng().uniformInt(0, 1 << 20));
      sim.auditNote(draw);
      if (draw % 7 == 0) {
        const std::uint32_t next = (id + 1) % 5;
        p.send(next, sim.now() + lookahead,
               [this, next] { engine.partition(next).sim().auditNote(next); });
      }
      const TimePoint at = sim.now() + Duration::micros(37);
      if (at > TimePoint::epoch() + horizon) return;
      sim.schedule(at, [this, id] { tick(id); });
    }
  };
  auto ticker = std::make_shared<Ticker>(Ticker{engine, lookahead, horizon});
  for (std::uint32_t i = 0; i < kParts; ++i) {
    engine.partition(i).sim().schedule(
        TimePoint::epoch() + Duration::micros(7 * (i + 1)),
        [ticker, i] { ticker->tick(i); });
  }
  engine.run(TimePoint::epoch() + horizon + lookahead);
  return engine.auditFingerprint();
}

TEST(PdesDeterminism, EngineDigestInvariantAcrossWorkerCounts) {
  const auto base =
      ringWorkload(42, 1, Duration::millis(1), Duration::millis(20));
  ASSERT_NE(base.digest, 0u);
  for (unsigned threads : {2u, 4u, 8u}) {
    const auto fp =
        ringWorkload(42, threads, Duration::millis(1), Duration::millis(20));
    EXPECT_EQ(fp.digest, base.digest) << "threads=" << threads;
  }
}

TEST(PdesDeterminism, LowLookaheadStressTerminatesAndMatches) {
  // Lookahead comparable to the local event spacing (40us vs 37us ticks)
  // forces thousands of tiny synchronization windows around a cycle — the
  // regime where a deadlocked or off-by-one protocol would hang or diverge.
  const auto base =
      ringWorkload(7, 1, Duration::micros(40), Duration::millis(4));
  const auto parallel =
      ringWorkload(7, 4, Duration::micros(40), Duration::millis(4));
  EXPECT_EQ(base.digest, parallel.digest);
}

// ------------------------------------------------- send promises

TEST(PdesPromise, SendBeforePromisedFloorThrows) {
  pdes::Engine engine{2, 1};
  engine.link(0, 1, Duration::millis(1));
  engine.partition(0).promiseNoSendBefore(
      1, TimePoint::epoch() + Duration::millis(5));
  // Pre-run now is the epoch, below the promised floor: the send must fail
  // loudly — the receiver's window may already have been scheduled past it.
  EXPECT_THROW(engine.partition(0).send(
                   1, TimePoint::epoch() + Duration::millis(10), [] {}),
               std::logic_error);
  // From an event at/after the floor the link works again.
  auto fired = std::make_shared<int>(0);
  pdes::Engine* ep = &engine;
  engine.partition(0).sim().schedule(
      TimePoint::epoch() + Duration::millis(6), [ep, fired] {
        ep->partition(0).send(1,
                              ep->partition(0).sim().now() + Duration::millis(1),
                              [fired] { ++*fired; });
      });
  engine.run(TimePoint::epoch() + Duration::millis(10));
  EXPECT_EQ(*fired, 1);
}

TEST(PdesPromise, RetrogradeOrUnlinkedPromiseThrows) {
  pdes::Engine engine{3, 1};
  engine.link(0, 1, Duration::millis(1));
  EXPECT_THROW(engine.partition(0).promiseNoSendBefore(
                   2, TimePoint::epoch() + Duration::millis(1)),
               std::logic_error);
  engine.partition(0).promiseNoSendBefore(
      1, TimePoint::epoch() + Duration::millis(10));
  EXPECT_THROW(engine.partition(0).promiseNoSendBefore(
                   1, TimePoint::epoch() + Duration::millis(5)),
               std::logic_error);
  // Monotone: re-promising the same floor or a later one is legal.
  engine.partition(0).promiseNoSendBefore(
      1, TimePoint::epoch() + Duration::millis(10));
  engine.partition(0).promiseNoSendBefore(
      1, TimePoint::epoch() + Duration::millis(12));
  EXPECT_EQ(engine.sendPromise(0, 1),
            TimePoint::epoch() + Duration::millis(12));
}

// ------------------------------------------------- adaptive windows (S4)

// Two partitions with heterogeneous lookaheads and dense local work. Each
// runs promised periodic sends toward the other; between sends every
// channel is provably quiet, so the adaptive engine coalesces what the
// plain EOT fixed point must run one-lookahead-at-a-time. All periods and
// tick spacings are pairwise co-prime and message arrivals are checked (by
// construction) to never collide with a local event instant — exact
// same-time ties are the one case where schedule-seq stamps become
// window-dependent.
struct PromiseWorkloadResult {
  std::uint64_t digest{0};
  pdes::RunReport report;
};

PromiseWorkloadResult promiseWorkload(std::uint64_t seed, unsigned threads,
                                      bool adaptive) {
  pdes::EngineConfig cfg;
  cfg.threads = threads;
  cfg.audit = true;
  cfg.adaptiveWindows = adaptive;
  pdes::Engine engine{2, seed, cfg};
  engine.link(0, 1, Duration::millis(1));
  engine.link(1, 0, Duration::millis(7));

  struct Driver {
    pdes::Engine& engine;
    // Local busy ticks at co-prime microsecond spacings (43us on 0, 37us on
    // 1): RNG draws folded into the audit chain, never a send.
    void micro(std::uint32_t id, std::int64_t spacingUs) {
      Simulator& sim = engine.partition(id).sim();
      sim.auditNote(
          static_cast<std::uint64_t>(sim.rng().uniformInt(0, 1 << 16)));
      const TimePoint at = sim.now() + Duration::micros(spacingUs);
      if (at > TimePoint::epoch() + Duration::millis(30)) return;
      sim.schedule(at, [this, id, spacingUs] { micro(id, spacingUs); });
    }
    // Promised periodic sender: send now (the floor admits this instant),
    // then raise the floor to the next tick before going quiet.
    void sender(std::uint32_t id, std::int64_t periodUs, TimePoint stop) {
      pdes::Partition& p = engine.partition(id);
      const std::uint32_t other = 1 - id;
      pdes::Engine* ep = &engine;
      p.send(other, p.sim().now() + engine.lookahead(id, other),
             [ep, other] {
               ep->partition(other).sim().auditNote(0x9e3779b9ull + other);
             });
      const TimePoint next = p.sim().now() + Duration::micros(periodUs);
      p.promiseNoSendBefore(other, next);
      if (next > stop) return;
      p.sim().schedule(next,
                       [this, id, periodUs, stop] { sender(id, periodUs, stop); });
    }
  };
  auto driver = std::make_shared<Driver>(Driver{engine});
  engine.partition(0).sim().schedule(TimePoint::epoch() + Duration::micros(43),
                                     [driver] { driver->micro(0, 43); });
  engine.partition(1).sim().schedule(TimePoint::epoch() + Duration::micros(37),
                                     [driver] { driver->micro(1, 37); });
  // Sender 0: ticks at 5, 10, ..., 25ms (arrivals on 1 at 6..26ms; none is
  // a multiple of 37us). Sender 1: ticks at 3.5, 6.5, ..., 24.5ms (arrivals
  // on 0 at 10.5..31.5ms; none is a multiple of 43us).
  engine.partition(0).promiseNoSendBefore(
      1, TimePoint::epoch() + Duration::millis(5));
  engine.partition(1).promiseNoSendBefore(
      0, TimePoint::epoch() + Duration::micros(3500));
  engine.partition(0).sim().schedule(
      TimePoint::epoch() + Duration::millis(5), [driver] {
        driver->sender(0, 5000, TimePoint::epoch() + Duration::millis(25));
      });
  engine.partition(1).sim().schedule(
      TimePoint::epoch() + Duration::micros(3500), [driver] {
        driver->sender(1, 3000,
                       TimePoint::epoch() + Duration::micros(24500));
      });

  PromiseWorkloadResult out;
  out.report = engine.run(TimePoint::epoch() + Duration::millis(40));
  out.digest = engine.auditDigest();
  return out;
}

TEST(PdesAdaptive, CoalescingCutsRoundsWithByteIdenticalDigests) {
  const PromiseWorkloadResult coalesced = promiseWorkload(99, 1, true);
  const PromiseWorkloadResult plain = promiseWorkload(99, 1, false);
  ASSERT_NE(coalesced.digest, 0u);

  // Same simulated work, byte-identical digests...
  EXPECT_EQ(coalesced.digest, plain.digest);
  EXPECT_EQ(coalesced.report.eventsExecuted, plain.report.eventsExecuted);
  EXPECT_EQ(coalesced.report.messagesDelivered,
            plain.report.messagesDelivered);
  // ...but provably fewer barrier crossings, and the counter shows the
  // promises (not luck) extended the windows.
  EXPECT_LT(coalesced.report.rounds, plain.report.rounds);
  EXPECT_GT(coalesced.report.coalescedWindows, 0u);
  EXPECT_EQ(plain.report.coalescedWindows, 0u);

  // Idle-fraction telemetry: one entry per partition, each a fraction.
  ASSERT_EQ(coalesced.report.idleFraction.size(), 2u);
  for (const double f : coalesced.report.idleFraction) {
    EXPECT_GE(f, 0.0);
    EXPECT_LE(f, 1.0);
  }

  // Both engine variants are thread-invariant.
  for (unsigned threads : {2u, 8u}) {
    EXPECT_EQ(promiseWorkload(99, threads, true).digest, coalesced.digest)
        << "adaptive threads=" << threads;
    EXPECT_EQ(promiseWorkload(99, threads, false).digest, plain.digest)
        << "plain threads=" << threads;
  }
}

// ------------------------------------------------- partitioned cluster

cluster::PartitionedClusterConfig smallClusterConfig(std::uint64_t seed,
                                                     unsigned threads) {
  cluster::PartitionedClusterConfig cfg;
  cfg.seed = seed;
  cfg.users = 90;
  cfg.shards = 6;
  cfg.threads = threads;
  const AvatarSpec avatar;
  cfg.updateProto.kind = avatarmsg::kPoseUpdate;
  cfg.updateProto.size = avatar.bytesPerUpdate;
  cfg.updateRateHz = avatar.updateRateHz;
  return cfg;
}

struct ClusterRunResult {
  cluster::PartitionedClusterStats stats;
  audit::RunFingerprint fp;
};

ClusterRunResult runSmallCluster(std::uint64_t seed, unsigned threads) {
  cluster::PartitionedCluster run{smallClusterConfig(seed, threads)};
  // Drain the last shard mid-measurement: migration hops cross partitions
  // while update traffic is live.
  run.scheduleDrain(5, TimePoint::epoch() + Duration::millis(250));
  ClusterRunResult out;
  out.stats = run.run(Duration::millis(500), Duration::seconds(1));
  out.fp = run.fingerprint();
  return out;
}

TEST(PdesCluster, DigestInvariantAcrossThreadsWithMigration) {
  const ClusterRunResult base = runSmallCluster(1234, 1);
  ASSERT_NE(base.fp.digest, 0u);
  EXPECT_GT(base.stats.broadcasts, 0u);
  EXPECT_EQ(base.stats.expectedDeliveries, base.stats.delivered);
  EXPECT_EQ(base.stats.migrations, 1u);
  EXPECT_GT(base.stats.migratedUsers, 0u);

  for (unsigned threads : {2u, 4u, 8u}) {
    const ClusterRunResult r = runSmallCluster(1234, threads);
    EXPECT_EQ(r.fp.digest, base.fp.digest) << "threads=" << threads;
    EXPECT_EQ(r.stats.delivered, base.stats.delivered)
        << "threads=" << threads;
    EXPECT_EQ(r.stats.migratedUsers, base.stats.migratedUsers)
        << "threads=" << threads;
    EXPECT_EQ(r.stats.engine.rounds, base.stats.engine.rounds)
        << "threads=" << threads;
  }
}

TEST(PdesCluster, VerifyThreadInvarianceComposesWithSeedSweep) {
  // The full PR-3 + PR-6 stack: a seed sweep whose per-seed scenario is
  // itself a parallel PDES run with threads=0, so nested engines lease
  // whatever the sweep left in the process ThreadBudget. The verifier runs
  // the sweep at 1 thread and at the MSIM_THREADS default and demands
  // byte-identical fingerprints per seed.
  const std::vector<std::uint64_t> seeds = defaultSeeds(2);
  const auto report = audit::verifyThreadInvariance(
      seeds,
      [](std::uint64_t seed) {
        cluster::PartitionedCluster run{smallClusterConfig(seed, 0)};
        run.scheduleDrain(2, TimePoint::epoch() + Duration::millis(100));
        (void)run.run(Duration::millis(200), Duration::millis(500));
        return run.fingerprint();
      });
  EXPECT_TRUE(report.identical) << report.describe();
}

TEST(PdesCluster, DirectLinkMigrationTakesTwoHops) {
  // Migration-only regime: the pacing period dwarfs the measurement window,
  // so the engine's message ledger contains exactly the migration protocol —
  // drain order + snapshot hops — and the hop count is pinned precisely.
  auto runMigrationOnly = [](bool direct) {
    cluster::PartitionedClusterConfig cfg = smallClusterConfig(777, 1);
    cfg.users = 24;
    cfg.shards = 4;
    cfg.updateRateHz = 0.01;  // first pacing tick far beyond the window
    cfg.directShardLinks = direct;
    cluster::PartitionedCluster run{cfg};
    run.scheduleDrain(3, TimePoint::epoch() + Duration::millis(200));
    return run.run(Duration::millis(400), Duration::seconds(1));
  };

  const cluster::PartitionedClusterStats direct = runMigrationOnly(true);
  EXPECT_EQ(direct.migrations, 1u);
  EXPECT_EQ(direct.migratedUsers, 6u);
  EXPECT_EQ(direct.migrationHops, 2u);
  // Order (control -> source) + snapshot (source -> target): two messages.
  EXPECT_EQ(direct.engine.messagesDelivered, 2u);

  const cluster::PartitionedClusterStats hub = runMigrationOnly(false);
  EXPECT_EQ(hub.migrations, 1u);
  EXPECT_EQ(hub.migratedUsers, direct.migratedUsers);
  EXPECT_EQ(hub.migrationHops, 3u);
  // Order + export (source -> control) + forward (control -> target).
  EXPECT_EQ(hub.engine.messagesDelivered, 3u);
}

TEST(PdesCluster, TwoHopMigrationZeroLossUnderTraffic) {
  // The exactly-once regression for the two-hop path: live update traffic
  // during the drain, direct vs hub topology, both ledgers must balance and
  // both must move the same room.
  auto runWith = [](bool direct) {
    cluster::PartitionedClusterConfig cfg = smallClusterConfig(4321, 1);
    cfg.directShardLinks = direct;
    cluster::PartitionedCluster run{cfg};
    run.scheduleDrain(5, TimePoint::epoch() + Duration::millis(250));
    return run.run(Duration::millis(500), Duration::seconds(1));
  };
  const cluster::PartitionedClusterStats direct = runWith(true);
  const cluster::PartitionedClusterStats hub = runWith(false);
  for (const auto* s : {&direct, &hub}) {
    EXPECT_GT(s->broadcasts, 0u);
    EXPECT_EQ(s->expectedDeliveries, s->delivered);
    EXPECT_EQ(s->migrations, 1u);
    EXPECT_EQ(s->migratedUsers, 15u);
  }
  EXPECT_EQ(direct.migrationHops, 2u);
  EXPECT_EQ(hub.migrationHops, 3u);
}

TEST(PdesCluster, AdaptiveWindowsMatchUncoalescedDigestAcrossThreads) {
  // The S4 acceptance matrix at cluster scale: {adaptive, plain} x threads
  // {1, 2, 8} — six runs, one digest, and the adaptive runs must cross the
  // barrier strictly fewer times.
  auto runVariant = [](bool adaptive, unsigned threads) {
    cluster::PartitionedClusterConfig cfg = smallClusterConfig(1234, threads);
    cfg.adaptiveWindows = adaptive;
    cluster::PartitionedCluster run{cfg};
    run.scheduleDrain(5, TimePoint::epoch() + Duration::millis(250));
    ClusterRunResult out;
    out.stats = run.run(Duration::millis(500), Duration::seconds(1));
    out.fp = run.fingerprint();
    return out;
  };

  const ClusterRunResult coalesced = runVariant(true, 1);
  const ClusterRunResult plain = runVariant(false, 1);
  ASSERT_NE(coalesced.fp.digest, 0u);
  EXPECT_EQ(coalesced.fp.digest, plain.fp.digest);
  EXPECT_EQ(coalesced.stats.delivered, plain.stats.delivered);
  EXPECT_LT(coalesced.stats.engine.rounds, plain.stats.engine.rounds);
  EXPECT_GT(coalesced.stats.engine.coalescedWindows, 0u);

  for (unsigned threads : {2u, 8u}) {
    EXPECT_EQ(runVariant(true, threads).fp.digest, coalesced.fp.digest)
        << "adaptive threads=" << threads;
    EXPECT_EQ(runVariant(false, threads).fp.digest, plain.fp.digest)
        << "plain threads=" << threads;
  }
}

TEST(PdesCluster, GhostLedgerBalancesAndIsThreadInvariant) {
  // Interest-scoped forwarding over the direct mesh: lattice-placed users,
  // AOI grid fan-out, and a ghost summary to the ring-next shard every
  // pacing tick. The ghost ledger is exactly-once and the audit digest pins the
  // ghost payloads across worker counts.
  auto runGhosts = [](unsigned threads) {
    cluster::PartitionedClusterConfig cfg = smallClusterConfig(555, threads);
    cfg.users = 60;
    cfg.shards = 3;
    cfg.dataSpec.interestGrid = true;
    cfg.latticeSpacingM = 2.0;
    cfg.interestForwarding = true;
    cfg.ghostRadiusM = 25.0;
    cluster::PartitionedCluster run{cfg};
    ClusterRunResult out;
    out.stats = run.run(Duration::millis(300), Duration::seconds(1));
    out.fp = run.fingerprint();
    return out;
  };

  const ClusterRunResult base = runGhosts(1);
  ASSERT_NE(base.fp.digest, 0u);
  EXPECT_GT(base.stats.ghostsSent, 0u);
  EXPECT_EQ(base.stats.ghostsSent, base.stats.ghostsReceived);
  EXPECT_EQ(base.stats.expectedDeliveries, base.stats.delivered);

  for (unsigned threads : {2u, 8u}) {
    const ClusterRunResult r = runGhosts(threads);
    EXPECT_EQ(r.fp.digest, base.fp.digest) << "threads=" << threads;
    EXPECT_EQ(r.stats.ghostsSent, base.stats.ghostsSent)
        << "threads=" << threads;
  }
}

}  // namespace
