// Tests for the geo substrate: distances/delays, the internet fabric,
// anycast routing, DNS steering, WHOIS, and the measurement tools.

#include <gtest/gtest.h>

#include "geo/dns.hpp"
#include "geo/fabric.hpp"
#include "geo/geo.hpp"
#include "geo/tools.hpp"
#include "geo/whois.hpp"
#include "transport/tcp.hpp"

namespace msim {
namespace {

// ---------------------------------------------------------------- geography

TEST(GeoTest, GreatCircleKnownDistances) {
  // Ashburn <-> Los Angeles is about 3,650 km.
  const double km = greatCircleKm(regions::usEast().location,
                                  regions::usWest().location);
  EXPECT_NEAR(km, 3650, 120);
  // London <-> LA is about 8,750 km.
  EXPECT_NEAR(greatCircleKm(regions::europe().location,
                            regions::usWest().location),
              8750, 200);
  EXPECT_DOUBLE_EQ(greatCircleKm(regions::usEast().location,
                                 regions::usEast().location),
                   0.0);
}

TEST(GeoTest, PropagationDelayCalibratedToTable2) {
  // Paper: east-coast client <-> west-coast server RTT ~72 ms.
  const Duration oneWay = propagationDelay(regions::usEast().location,
                                           regions::usWest().location);
  EXPECT_NEAR(2 * oneWay.toMillis(), 72.0, 4.0);
  // Paper: Europe <-> U.S. west coast RTT ~140-150 ms.
  const Duration euWest = propagationDelay(regions::europe().location,
                                           regions::usWest().location);
  EXPECT_NEAR(2 * euWest.toMillis(), 140.0, 12.0);
}

// ------------------------------------------------------------------- fabric

class FabricFixture : public ::testing::Test {
 protected:
  Simulator sim{3};
  Network net{sim};
  InternetFabric fabric{net};
};

TEST_F(FabricFixture, HostsInSameRegionReachQuickly) {
  Node& a = fabric.attachHost("a", regions::usEast(), Ipv4Address(10, 0, 0, 1));
  Node& b = fabric.attachHost("b", regions::usEast(), Ipv4Address(100, 1, 1, 1));
  PingTool pinger{a};
  double rtt = -1;
  pinger.ping(b.primaryAddress(), 3, [&](const PingResult& r) {
    ASSERT_TRUE(r.reachable());
    rtt = r.rttMs.mean();
  });
  sim.run();
  EXPECT_GT(rtt, 0.0);
  EXPECT_LT(rtt, 5.0);
}

TEST_F(FabricFixture, CrossCountryRttMatchesPaper) {
  Node& client = fabric.attachHost("client", regions::usEast(), Ipv4Address(10, 0, 0, 1));
  Node& server = fabric.attachHost("server", regions::usWest(), Ipv4Address(100, 1, 2, 1));
  PingTool pinger{client};
  double rtt = -1;
  pinger.ping(server.primaryAddress(), 5, [&](const PingResult& r) {
    ASSERT_TRUE(r.reachable());
    rtt = r.rttMs.mean();
  });
  sim.run();
  EXPECT_NEAR(rtt, 72.0, 6.0);  // Table 2: 72.1 ms to AltspaceVR data server
}

TEST_F(FabricFixture, EuropeToWestCoastRtt) {
  Node& client = fabric.attachHost("client", regions::europe(), Ipv4Address(10, 9, 0, 1));
  Node& server = fabric.attachHost("server", regions::usWest(), Ipv4Address(100, 3, 2, 1));
  PingTool pinger{client};
  double rtt = -1;
  pinger.ping(server.primaryAddress(), 3, [&](const PingResult& r) { rtt = r.rttMs.mean(); });
  sim.run();
  EXPECT_NEAR(rtt, 142.0, 12.0);  // §4.2: ~140 ms (Hubs WebRTC from Europe)
}

TEST_F(FabricFixture, LateRegionJoinStillRoutes) {
  Node& a = fabric.attachHost("a", regions::usEast(), Ipv4Address(10, 0, 0, 1));
  // Europe core created after 'a' was attached.
  Node& c = fabric.attachHost("c", regions::europe(), Ipv4Address(10, 9, 0, 1));
  int delivered = 0;
  a.setLocalHandler([&](const Packet&) { ++delivered; });
  Packet p;
  p.src = c.primaryAddress();
  p.dst = a.primaryAddress();
  p.proto = IpProto::Udp;
  p.payloadBytes = ByteSize::bytes(10);
  c.sendFromLocal(std::move(p));
  sim.run();
  EXPECT_EQ(delivered, 1);
}

TEST_F(FabricFixture, AnycastRoutesToNearestReplica) {
  Node& eastClient = fabric.attachHost("ec", regions::usEast(), Ipv4Address(10, 0, 0, 1));
  Node& westClient = fabric.attachHost("wc", regions::usWest(), Ipv4Address(10, 0, 0, 2));
  Node& eastRep = fabric.attachHost("rep-e", regions::usEast(), Ipv4Address(100, 4, 1, 1));
  Node& westRep = fabric.attachHost("rep-w", regions::usWest(), Ipv4Address(100, 4, 2, 1));
  const Ipv4Address anycast{100, 4, 9, 1};
  fabric.advertiseAnycast(anycast, {&eastRep, &westRep});

  double eastRtt = -1;
  double westRtt = -1;
  PingTool pe{eastClient};
  PingTool pw{westClient};
  pe.ping(anycast, 3, [&](const PingResult& r) { eastRtt = r.rttMs.mean(); });
  pw.ping(anycast, 3, [&](const PingResult& r) { westRtt = r.rttMs.mean(); });
  sim.run();
  // Both coasts see a local replica: low RTT from both vantages.
  EXPECT_GT(eastRtt, 0.0);
  EXPECT_LT(eastRtt, 6.0);
  EXPECT_GT(westRtt, 0.0);
  EXPECT_LT(westRtt, 6.0);
}

TEST_F(FabricFixture, TracerouteSeesCoreHops) {
  Node& client = fabric.attachHost("client", regions::usEast(), Ipv4Address(10, 0, 0, 1));
  Node& server = fabric.attachHost("server", regions::usWest(), Ipv4Address(100, 1, 2, 1));
  TransportMux::of(server);  // server must answer port-unreachable
  TracerouteTool tracer{client};
  std::vector<TracerouteHop> hops;
  tracer.trace(server.primaryAddress(),
               [&](const std::vector<TracerouteHop>& h) { hops = h; });
  sim.run();
  ASSERT_GE(hops.size(), 3u);  // east core, west core, server
  EXPECT_TRUE(hops.back().reachedTarget);
  EXPECT_EQ(hops.back().addr, server.primaryAddress());
  // First hop is the local core with a sub-ms-ish RTT; the next crosses the
  // country.
  EXPECT_LT(hops[0].rttMs, 5.0);
  EXPECT_GT(hops[1].rttMs, 60.0);
}

// ---------------------------------------------------------------------- DNS

TEST(DnsTest, StaticAndNearest) {
  Dns dns;
  dns.addStatic("control.example", Ipv4Address(100, 3, 1, 1));
  dns.addNearest("data.example", {{regions::usEast(), Ipv4Address(100, 3, 1, 2)},
                                  {regions::usWest(), Ipv4Address(100, 3, 2, 2)},
                                  {regions::europe(), Ipv4Address(100, 3, 3, 2)}});
  EXPECT_EQ(dns.resolve("control.example", regions::usWest()), Ipv4Address(100, 3, 1, 1));
  EXPECT_EQ(dns.resolve("data.example", regions::usEast()), Ipv4Address(100, 3, 1, 2));
  EXPECT_EQ(dns.resolve("data.example", regions::usWest()), Ipv4Address(100, 3, 2, 2));
  EXPECT_EQ(dns.resolve("data.example", regions::europe()), Ipv4Address(100, 3, 3, 2));
  EXPECT_EQ(dns.resolve("data.example", regions::middleEast()), Ipv4Address(100, 3, 3, 2));
  EXPECT_TRUE(dns.resolve("unknown", regions::usEast()).isUnspecified());
  EXPECT_TRUE(dns.knows("data.example"));
  EXPECT_FALSE(dns.knows("nope"));
}

// -------------------------------------------------------------------- WHOIS

TEST(WhoisTest, DefaultPlanLookups) {
  const WhoisDb db = addrplan::defaultWhois();
  EXPECT_EQ(db.ownerOf(Ipv4Address(100, 1, 2, 7)), "Microsoft");
  EXPECT_EQ(db.ownerOf(Ipv4Address(100, 2, 1, 1)), "Meta");
  EXPECT_EQ(db.ownerOf(Ipv4Address(100, 3, 1, 1)), "AWS");
  EXPECT_EQ(db.ownerOf(Ipv4Address(100, 4, 9, 1)), "Cloudflare");
  EXPECT_EQ(db.ownerOf(Ipv4Address(100, 5, 9, 1)), "ANS");
  EXPECT_EQ(db.ownerOf(Ipv4Address(1, 1, 1, 1)), "unknown");
}

TEST(WhoisTest, GeolocationAndAnycastMasking) {
  const WhoisDb db = addrplan::defaultWhois();
  EXPECT_EQ(db.geolocate(Ipv4Address(100, 1, 2, 7)), "us-west");
  EXPECT_EQ(db.geolocate(Ipv4Address(100, 3, 1, 9)), "us-east");
  // Anycast blocks geolocate as "-" (the paper marks those locations "-").
  EXPECT_EQ(db.geolocate(Ipv4Address(100, 4, 9, 1)), "-");
  EXPECT_EQ(db.geolocate(Ipv4Address(9, 9, 9, 9)), "-");
}

TEST(WhoisTest, LongestPrefixWins) {
  WhoisDb db;
  db.add(WhoisRecord{Ipv4Address(100, 0, 0, 0), 8, "broad", "x", false});
  db.add(WhoisRecord{Ipv4Address(100, 1, 0, 0), 16, "narrow", "y", false});
  EXPECT_EQ(db.ownerOf(Ipv4Address(100, 1, 1, 1)), "narrow");
  EXPECT_EQ(db.ownerOf(Ipv4Address(100, 2, 1, 1)), "broad");
}

// -------------------------------------------------------------------- tools

class ToolsFixture : public FabricFixture {
 protected:
  void SetUp() override {
    client = &fabric.attachHost("client", regions::usEast(), Ipv4Address(10, 0, 0, 1));
    server = &fabric.attachHost("server", regions::usWest(), Ipv4Address(100, 1, 2, 1));
    TransportMux::of(*server);
  }
  Node* client{};
  Node* server{};
};

TEST_F(ToolsFixture, PingCountsLostProbes) {
  server->setIcmpEchoEnabled(false);
  PingTool pinger{*client};
  PingResult result;
  pinger.ping(server->primaryAddress(), 3, [&](const PingResult& r) { result = r; });
  sim.run();
  EXPECT_EQ(result.sent, 3);
  EXPECT_EQ(result.received, 0);
  EXPECT_FALSE(result.reachable());
}

TEST_F(ToolsFixture, TcpPingMeasuresRttWhenIcmpBlocked) {
  server->setIcmpEchoEnabled(false);
  TcpListener listener{*server, 443};
  TcpPingTool pinger{*client};
  PingResult result;
  pinger.ping(Endpoint{server->primaryAddress(), 443}, 3,
              [&](const PingResult& r) { result = r; });
  sim.run();
  EXPECT_EQ(result.received, 3);
  EXPECT_NEAR(result.rttMs.mean(), 72.0, 8.0);
}

TEST_F(ToolsFixture, TcpPingAgainstClosedPortStillMeasures) {
  TcpPingTool pinger{*client};
  PingResult result;
  pinger.ping(Endpoint{server->primaryAddress(), 9999}, 2,
              [&](const PingResult& r) { result = r; });
  sim.run();
  EXPECT_EQ(result.received, 2);  // RSTs time the path too
  EXPECT_NEAR(result.rttMs.mean(), 72.0, 8.0);
}

TEST_F(ToolsFixture, AnycastInferenceFlagsAnycastTarget) {
  Node& v1 = fabric.attachHost("v-north", regions::usNorth(), Ipv4Address(10, 1, 0, 1));
  Node& v2 = fabric.attachHost("v-me", regions::middleEast(), Ipv4Address(10, 2, 0, 1));
  Node& repE = fabric.attachHost("rep-e", regions::usEast(), Ipv4Address(100, 4, 1, 9));
  Node& repN = fabric.attachHost("rep-n", regions::usNorth(), Ipv4Address(100, 4, 1, 10));
  Node& repM = fabric.attachHost("rep-m", regions::middleEast(), Ipv4Address(100, 4, 1, 11));
  TransportMux::of(repE);
  TransportMux::of(repN);
  TransportMux::of(repM);
  const Ipv4Address anycast{100, 4, 9, 1};
  fabric.advertiseAnycast(anycast, {&repE, &repN, &repM});

  AnycastReport report;
  AnycastInference::run(sim, {client, &v1, &v2}, anycast,
                        [&](const AnycastReport& r) { report = r; });
  sim.run();
  EXPECT_TRUE(report.likelyAnycast);
}

TEST_F(ToolsFixture, AnycastInferenceClearsUnicastTarget) {
  Node& v1 = fabric.attachHost("v-north", regions::usNorth(), Ipv4Address(10, 1, 0, 1));
  Node& v2 = fabric.attachHost("v-me", regions::middleEast(), Ipv4Address(10, 2, 0, 1));
  AnycastReport report;
  report.likelyAnycast = true;
  AnycastInference::run(sim, {client, &v1, &v2}, server->primaryAddress(),
                        [&](const AnycastReport& r) { report = r; });
  sim.run();
  EXPECT_FALSE(report.likelyAnycast);  // RTTs grow with distance
}

}  // namespace
}  // namespace msim
