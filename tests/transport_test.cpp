// Unit and property tests for the transport substrate:
// UDP, TCP (Reno), TLS streams, HTTP, RTP/RTCP.

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "transport/http.hpp"
#include "transport/rtp.hpp"
#include "transport/tcp.hpp"
#include "transport/tls.hpp"
#include "transport/udp.hpp"

namespace msim {
namespace {

/// Two hosts joined by a configurable link.
class TransportFixture : public ::testing::Test {
 protected:
  void connectHosts(LinkConfig cfg) {
    auto [da, db] = Link::connect(*a, *b, cfg);
    a->setDefaultRoute(da);
    b->setDefaultRoute(db);
    devA = &da;
    devB = &db;
  }

  void SetUp() override {
    a = &net.addNode("a");
    b = &net.addNode("b");
    a->addAddress(Ipv4Address(10, 0, 0, 1));
    b->addAddress(Ipv4Address(10, 0, 0, 2));
    LinkConfig cfg;
    cfg.rate = DataRate::mbps(100);
    cfg.delay = Duration::millis(5);
    connectHosts(cfg);
  }

  Simulator sim{1};
  Network net{sim};
  Node* a{};
  Node* b{};
  NetDevice* devA{};
  NetDevice* devB{};
};

// ---------------------------------------------------------------------- UDP

TEST_F(TransportFixture, UdpDatagramDelivery) {
  UdpSocket server{*b, 5000};
  UdpSocket client{*a};
  int received = 0;
  Endpoint from;
  server.onReceive([&](const Packet& p, const Endpoint& src) {
    ++received;
    from = src;
    EXPECT_EQ(p.payloadBytes.toBytes(), 200);
  });
  client.sendTo(Endpoint{b->primaryAddress(), 5000}, ByteSize::bytes(200));
  sim.run();
  EXPECT_EQ(received, 1);
  EXPECT_EQ(from.addr, a->primaryAddress());
  EXPECT_EQ(from.port, client.localPort());
}

TEST_F(TransportFixture, UdpEphemeralPortsAreDistinct) {
  UdpSocket s1{*a};
  UdpSocket s2{*a};
  UdpSocket s3{*a};
  EXPECT_NE(s1.localPort(), s2.localPort());
  EXPECT_NE(s2.localPort(), s3.localPort());
  EXPECT_GE(s1.localPort(), 49152);
}

TEST_F(TransportFixture, UdpFragmentsLargePayload) {
  UdpSocket server{*b, 5000};
  UdpSocket client{*a};
  int fragments = 0;
  int messagesSeen = 0;
  std::int64_t totalBytes = 0;
  server.onReceive([&](const Packet& p, const Endpoint&) {
    ++fragments;
    totalBytes += p.payloadBytes.toBytes();
    if (p.primaryMessage() != nullptr) ++messagesSeen;
  });
  auto msg = std::make_shared<Message>();
  msg->kind = "bulk";
  msg->size = ByteSize::bytes(5000);
  client.sendTo(Endpoint{b->primaryAddress(), 5000}, ByteSize::bytes(5000), msg);
  sim.run();
  EXPECT_EQ(fragments, 4);  // 1472 * 3 + remainder
  EXPECT_EQ(totalBytes, 5000);
  EXPECT_EQ(messagesSeen, 1);  // message rides the final fragment
}

TEST_F(TransportFixture, UdpSocketUnbindsOnDestruction) {
  {
    UdpSocket server{*b, 6000};
    EXPECT_TRUE(TransportMux::of(*b).udpPortBound(6000));
  }
  EXPECT_FALSE(TransportMux::of(*b).udpPortBound(6000));
}

TEST_F(TransportFixture, UdpZeroBytePayloadStillDelivers) {
  UdpSocket server{*b, 5000};
  UdpSocket client{*a};
  int received = 0;
  server.onReceive([&](const Packet&, const Endpoint&) { ++received; });
  client.sendTo(Endpoint{b->primaryAddress(), 5000}, ByteSize::zero());
  sim.run();
  EXPECT_EQ(received, 1);
}

// ---------------------------------------------------------------------- TCP

Message appMessage(const std::string& kind, std::int64_t bytes,
                   std::uint64_t action = 0) {
  Message m;
  m.kind = kind;
  m.size = ByteSize::bytes(bytes);
  m.actionId = action;
  return m;
}

TEST_F(TransportFixture, TcpHandshakeCompletes) {
  TcpListener listener{*b, 443};
  bool accepted = false;
  listener.onAccept([&](const std::shared_ptr<TcpSocket>&) { accepted = true; });
  auto client = TcpSocket::create(*a);
  bool connected = false;
  client->connect(Endpoint{b->primaryAddress(), 443},
                  [&](bool ok) { connected = ok; });
  sim.run();
  EXPECT_TRUE(connected);
  EXPECT_TRUE(accepted);
  EXPECT_EQ(client->state(), TcpState::Established);
}

TEST_F(TransportFixture, TcpConnectToClosedPortFails) {
  auto client = TcpSocket::create(*a);
  bool result = true;
  client->connect(Endpoint{b->primaryAddress(), 444},
                  [&](bool ok) { result = ok; });
  sim.run();
  EXPECT_FALSE(result);  // RST answered
  EXPECT_EQ(client->state(), TcpState::Closed);
}

TEST_F(TransportFixture, TcpDeliversMessagesInOrder) {
  TcpListener listener{*b, 443};
  std::vector<std::string> got;
  std::shared_ptr<TcpSocket> serverSock;
  listener.onAccept([&](const std::shared_ptr<TcpSocket>& s) {
    serverSock = s;
    s->onMessage([&](const Message& m) { got.push_back(m.kind.str()); });
  });
  auto client = TcpSocket::create(*a);
  client->connect(Endpoint{b->primaryAddress(), 443}, nullptr);
  client->send(appMessage("first", 100));
  client->send(appMessage("second", 2000));
  client->send(appMessage("third", 50));
  sim.run();
  ASSERT_EQ(got.size(), 3u);
  EXPECT_EQ(got[0], "first");
  EXPECT_EQ(got[1], "second");
  EXPECT_EQ(got[2], "third");
}

TEST_F(TransportFixture, TcpBulkTransferCompletes) {
  TcpListener listener{*b, 443};
  std::int64_t received = 0;
  listener.onAccept([&](const std::shared_ptr<TcpSocket>& s) {
    s->onMessage([&](const Message& m) { received += m.size.toBytes(); });
  });
  auto client = TcpSocket::create(*a);
  client->connect(Endpoint{b->primaryAddress(), 443}, nullptr);
  client->send(appMessage("bulk", 5'000'000));
  sim.run();
  EXPECT_EQ(received, 5'000'000);
}

TEST_F(TransportFixture, TcpDeliveredCallbackFiresAfterAck) {
  TcpListener listener{*b, 443};
  listener.onAccept([](const std::shared_ptr<TcpSocket>& s) {
    s->onMessage([](const Message&) {});
  });
  auto client = TcpSocket::create(*a);
  client->connect(Endpoint{b->primaryAddress(), 443}, nullptr);
  std::vector<std::string> delivered;
  client->onDelivered([&](const Message& m) { delivered.push_back(m.kind.str()); });
  client->send(appMessage("m1", 500));
  client->send(appMessage("m2", 500));
  sim.run();
  ASSERT_EQ(delivered.size(), 2u);
  EXPECT_EQ(delivered[0], "m1");
  EXPECT_FALSE(client->hasUnackedData());
}

TEST_F(TransportFixture, TcpSurvivesHeavyLoss) {
  NetemConfig lossy;
  lossy.lossRate = 0.1;
  devA->netem().configure(lossy);
  devB->netem().configure(lossy);
  TcpListener listener{*b, 443};
  std::int64_t received = 0;
  listener.onAccept([&](const std::shared_ptr<TcpSocket>& s) {
    s->onMessage([&](const Message& m) { received += m.size.toBytes(); });
  });
  auto client = TcpSocket::create(*a);
  client->connect(Endpoint{b->primaryAddress(), 443}, nullptr);
  client->send(appMessage("bulk", 500'000));
  sim.run();
  EXPECT_EQ(received, 500'000);
  EXPECT_GT(client->retransmits(), 0u);
}

TEST_F(TransportFixture, TcpRttEstimateTracksPathRtt) {
  TcpListener listener{*b, 443};
  listener.onAccept([](const std::shared_ptr<TcpSocket>& s) {
    s->onMessage([](const Message&) {});
  });
  auto client = TcpSocket::create(*a);
  client->connect(Endpoint{b->primaryAddress(), 443}, nullptr);
  for (int i = 0; i < 20; ++i) client->send(appMessage("ping", 100));
  sim.run();
  // Path RTT is 10 ms + serialization; delayed ACK may add up to 40 ms.
  EXPECT_GT(client->smoothedRtt().toMillis(), 9.0);
  EXPECT_LT(client->smoothedRtt().toMillis(), 60.0);
}

TEST_F(TransportFixture, TcpCloseHandshake) {
  TcpListener listener{*b, 443};
  std::shared_ptr<TcpSocket> serverSock;
  bool serverSawClose = false;
  listener.onAccept([&](const std::shared_ptr<TcpSocket>& s) {
    serverSock = s;
    s->onMessage([](const Message&) {});
    s->onClose([&] { serverSawClose = true; });
  });
  auto client = TcpSocket::create(*a);
  client->connect(Endpoint{b->primaryAddress(), 443}, nullptr);
  client->send(appMessage("data", 1000));
  sim.runFor(Duration::seconds(1));
  client->close();
  ASSERT_TRUE(serverSock != nullptr);
  serverSock->close();
  sim.runFor(Duration::seconds(5));
  EXPECT_TRUE(serverSawClose);
  EXPECT_EQ(client->state(), TcpState::Closed);
}

TEST_F(TransportFixture, TcpAbortSendsRst) {
  TcpListener listener{*b, 443};
  bool serverClosed = false;
  std::shared_ptr<TcpSocket> serverSock;
  listener.onAccept([&](const std::shared_ptr<TcpSocket>& s) {
    serverSock = s;
    s->onClose([&] { serverClosed = true; });
  });
  auto client = TcpSocket::create(*a);
  client->connect(Endpoint{b->primaryAddress(), 443}, nullptr);
  sim.runFor(Duration::seconds(1));
  client->abort();
  sim.runFor(Duration::seconds(1));
  EXPECT_TRUE(serverClosed);
}

TEST_F(TransportFixture, TcpTotalBlackoutGivesUpEventually) {
  TcpListener listener{*b, 443};
  listener.onAccept([](const std::shared_ptr<TcpSocket>& s) {
    s->onMessage([](const Message&) {});
  });
  TcpConfig cfg;
  cfg.maxDataRetries = 4;
  auto client = TcpSocket::create(*a, cfg);
  client->connect(Endpoint{b->primaryAddress(), 443}, nullptr);
  sim.runFor(Duration::seconds(1));
  bool closed = false;
  client->onClose([&] { closed = true; });
  NetemConfig blackout;
  blackout.lossRate = 1.0;
  devA->netem().configure(blackout);
  client->send(appMessage("doomed", 1000));
  sim.runFor(Duration::minutes(5));
  EXPECT_TRUE(closed);
  EXPECT_EQ(client->state(), TcpState::Closed);
}

TEST_F(TransportFixture, TcpRecoversAfterTemporaryBlackout) {
  TcpListener listener{*b, 443};
  std::int64_t received = 0;
  listener.onAccept([&](const std::shared_ptr<TcpSocket>& s) {
    s->onMessage([&](const Message& m) { received += m.size.toBytes(); });
  });
  auto client = TcpSocket::create(*a);
  client->connect(Endpoint{b->primaryAddress(), 443}, nullptr);
  sim.runFor(Duration::seconds(1));
  NetemConfig blackout;
  blackout.lossRate = 1.0;
  devA->netem().configure(blackout);
  client->send(appMessage("patient", 10'000));
  sim.runFor(Duration::seconds(10));
  EXPECT_EQ(received, 0);
  devA->netem().reset();
  sim.runFor(Duration::minutes(2));
  EXPECT_EQ(received, 10'000);  // retransmission finished the job
}

TEST_F(TransportFixture, TcpThroughputRespectsBottleneck) {
  LinkConfig slow;
  slow.rate = DataRate::mbps(10);
  slow.delay = Duration::millis(5);
  slow.queueLimit = ByteSize::kilobytes(64);
  connectHosts(slow);
  TcpListener listener{*b, 443};
  std::int64_t received = 0;
  listener.onAccept([&](const std::shared_ptr<TcpSocket>& s) {
    s->onMessage([&](const Message& m) { received += m.size.toBytes(); });
  });
  auto client = TcpSocket::create(*a);
  client->connect(Endpoint{b->primaryAddress(), 443}, nullptr);
  client->send(appMessage("bulk", 2'000'000));
  const auto start = sim.now();
  sim.run();
  const double secs = (sim.now() - start).toSeconds();
  const double mbps = 2'000'000 * 8.0 / 1e6 / secs;
  EXPECT_EQ(received, 2'000'000);
  EXPECT_LT(mbps, 10.0);   // cannot beat the link
  EXPECT_GT(mbps, 5.0);    // but should utilize most of it
}

// Property sweep: every (lossRate, messageCount) combination must deliver
// all bytes in order.
class TcpLossSweep : public TransportFixture,
                     public ::testing::WithParamInterface<std::tuple<double, int>> {};

TEST_P(TcpLossSweep, ReliableOrderedDelivery) {
  const auto [loss, messages] = GetParam();
  NetemConfig lossy;
  lossy.lossRate = loss;
  devA->netem().configure(lossy);
  devB->netem().configure(lossy);
  TcpListener listener{*b, 443};
  std::vector<std::uint64_t> got;
  listener.onAccept([&](const std::shared_ptr<TcpSocket>& s) {
    s->onMessage([&](const Message& m) { got.push_back(m.sequence); });
  });
  auto client = TcpSocket::create(*a);
  client->connect(Endpoint{b->primaryAddress(), 443}, nullptr);
  for (int i = 0; i < messages; ++i) {
    auto m = appMessage("seq", 700 + i * 13);
    m.sequence = static_cast<std::uint64_t>(i);
    client->send(std::move(m));
  }
  sim.runFor(Duration::minutes(10));
  ASSERT_EQ(got.size(), static_cast<std::size_t>(messages));
  for (int i = 0; i < messages; ++i) {
    EXPECT_EQ(got[i], static_cast<std::uint64_t>(i));
  }
}

INSTANTIATE_TEST_SUITE_P(
    LossGrid, TcpLossSweep,
    ::testing::Combine(::testing::Values(0.0, 0.02, 0.08, 0.15),
                       ::testing::Values(1, 10, 40)));

// ---------------------------------------------------------------------- TLS

TEST_F(TransportFixture, TlsStreamHandshakeAndEcho) {
  TlsStreamServer server{*b, 443};
  server.onMessage([&](TlsStreamServer::ConnId id, const Message& m) {
    Message reply;
    reply.kind = "echo:" + m.kind.str();
    reply.size = m.size;
    server.sendTo(id, std::move(reply));
  });
  TlsStreamClient client{*a};
  bool ready = false;
  std::string echoed;
  client.onMessage([&](const Message& m) { echoed = m.kind.str(); });
  client.connect(Endpoint{b->primaryAddress(), 443}, [&](bool ok) { ready = ok; });
  Message m;
  m.kind = "hello";
  m.size = ByteSize::bytes(100);
  client.send(std::move(m));  // queued until handshake completes
  sim.run();
  EXPECT_TRUE(ready);
  EXPECT_EQ(echoed, "echo:hello");
  EXPECT_EQ(server.connectionCount(), 1u);
}

TEST_F(TransportFixture, TlsHandshakeCostsAtLeastTwoRtts) {
  // TCP handshake (1 RTT) + TLS hello/flight (1 RTT): ready no earlier than
  // 2 RTT = 20 ms on this 10 ms-RTT path.
  TlsStreamServer server{*b, 443};
  TlsStreamClient client{*a};
  TimePoint readyAt;
  client.connect(Endpoint{b->primaryAddress(), 443},
                 [&](bool) { readyAt = sim.now(); });
  sim.run();
  EXPECT_GE(readyAt.toMillis(), 20.0);
}

// --------------------------------------------------------------------- HTTP

TEST_F(TransportFixture, HttpRequestResponse) {
  HttpServer server{*b, 443};
  server.route("/api/", [](const HttpRequest& req) {
    HttpResponse resp;
    resp.body = ByteSize::bytes(2048);
    EXPECT_EQ(req.path, "/api/state");
    return resp;
  });
  HttpClient client{*a};
  int status = 0;
  std::int64_t body = 0;
  HttpRequest req;
  req.path = "/api/state";
  req.body = ByteSize::bytes(128);
  client.request(Endpoint{b->primaryAddress(), 443}, req,
                 [&](const HttpResponse& resp, Duration) {
                   status = resp.status;
                   body = resp.body.toBytes();
                 });
  sim.run();
  EXPECT_EQ(status, 200);
  EXPECT_EQ(body, 2048);
}

TEST_F(TransportFixture, HttpUnroutedPathGets404) {
  HttpServer server{*b, 443};
  HttpClient client{*a};
  int status = 0;
  client.request(Endpoint{b->primaryAddress(), 443}, HttpRequest{"/nope"},
                 [&](const HttpResponse& resp, Duration) { status = resp.status; });
  sim.run();
  EXPECT_EQ(status, 404);
}

TEST_F(TransportFixture, HttpLongestPrefixRouteWins) {
  HttpServer server{*b, 443};
  server.route("/", [](const HttpRequest&) { return HttpResponse{201}; });
  server.route("/deep/", [](const HttpRequest&) { return HttpResponse{202}; });
  HttpClient client{*a};
  int s1 = 0;
  int s2 = 0;
  client.request(Endpoint{b->primaryAddress(), 443}, HttpRequest{"/deep/x"},
                 [&](const HttpResponse& r, Duration) { s1 = r.status; });
  client.request(Endpoint{b->primaryAddress(), 443}, HttpRequest{"/other"},
                 [&](const HttpResponse& r, Duration) { s2 = r.status; });
  sim.run();
  EXPECT_EQ(s1, 202);
  EXPECT_EQ(s2, 201);
}

TEST_F(TransportFixture, HttpPipelinedResponsesMatchFifo) {
  HttpServer server{*b, 443};
  server.route("/", [](const HttpRequest& req) {
    HttpResponse resp;
    resp.body = ByteSize::bytes(req.path == "/big" ? 100'000 : 10);
    return resp;
  });
  HttpClient client{*a};
  std::vector<std::int64_t> bodies;
  for (const char* path : {"/big", "/small", "/small"}) {
    client.request(Endpoint{b->primaryAddress(), 443}, HttpRequest{path},
                   [&](const HttpResponse& r, Duration) {
                     bodies.push_back(r.body.toBytes());
                   });
  }
  sim.run();
  ASSERT_EQ(bodies.size(), 3u);
  EXPECT_EQ(bodies[0], 100'000);  // FIFO even though later ones are smaller
  EXPECT_EQ(bodies[1], 10);
}

TEST_F(TransportFixture, HttpBusyReflectsInflightRequests) {
  HttpServer server{*b, 443};
  server.route("/", [](const HttpRequest&) { return HttpResponse{}; });
  HttpClient client{*a};
  EXPECT_FALSE(client.busy());
  client.request(Endpoint{b->primaryAddress(), 443}, HttpRequest{"/x"}, nullptr);
  EXPECT_TRUE(client.busy());
  sim.run();
  EXPECT_FALSE(client.busy());
}

TEST_F(TransportFixture, HttpActionIdPropagates) {
  HttpServer server{*b, 443};
  server.route("/", [](const HttpRequest&) { return HttpResponse{}; });
  HttpClient client{*a};
  std::uint64_t echoed = 0;
  HttpRequest req{"/act"};
  req.actionId = 777;
  client.request(Endpoint{b->primaryAddress(), 443}, req,
                 [&](const HttpResponse& r, Duration) { echoed = r.actionId; });
  sim.run();
  EXPECT_EQ(echoed, 777);
}

// ---------------------------------------------------------------------- RTP

TEST_F(TransportFixture, RtpFramesFlow) {
  RtpSession alice{*a};
  RtpSession bob{*b, 7000};
  alice.setRemote(Endpoint{b->primaryAddress(), 7000});
  bob.setRemote(Endpoint{a->primaryAddress(), alice.localPort()});
  int frames = 0;
  bob.onFrame([&](const Packet& p, const Endpoint&) {
    ++frames;
    EXPECT_EQ(p.overheadBytes, wire::kEthIpUdp + wire::kDtlsSrtp);
  });
  for (int i = 0; i < 10; ++i) alice.sendFrame(ByteSize::bytes(320));
  sim.run();
  EXPECT_EQ(frames, 10);
  EXPECT_EQ(alice.framesSent(), 10u);
  EXPECT_EQ(bob.framesReceived(), 10u);
}

TEST_F(TransportFixture, RtcpMeasuresPathRtt) {
  RtpSession alice{*a};
  RtpSession bob{*b, 7000};
  alice.setRemote(Endpoint{b->primaryAddress(), 7000});
  bob.setRemote(Endpoint{a->primaryAddress(), alice.localPort()});
  alice.startRtcp(Duration::seconds(1));
  sim.runFor(Duration::seconds(5));
  ASSERT_TRUE(alice.lastRtt().has_value());
  EXPECT_NEAR(alice.lastRtt()->toMillis(), 10.0, 1.0);  // 2 x 5 ms propagation
}

TEST_F(TransportFixture, RtcpSurvivesUnresponsivePeer) {
  RtpSession alice{*a};
  alice.setRemote(Endpoint{b->primaryAddress(), 7999});  // nobody listening
  alice.startRtcp(Duration::seconds(1));
  sim.runFor(Duration::minutes(2));  // must not grow unboundedly or crash
  EXPECT_FALSE(alice.lastRtt().has_value());
}

}  // namespace
}  // namespace msim
