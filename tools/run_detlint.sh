#!/usr/bin/env sh
# Runs the detlint determinism gate over the sim-visible tree plus the test
# and example trees (pre-existing findings there ride the seeded baseline).
#
# Usage: tools/run_detlint.sh [extra detlint args...]
#   DETLINT_BIN  path to the detlint binary (default: build/tools/detlint/detlint)
#
# Exits 0 when the tree is clean (modulo tools/detlint_baseline.txt if it
# exists), 1 on findings, 2 on usage/IO errors.
set -eu

repo_root=$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)
bin=${DETLINT_BIN:-"$repo_root/build/tools/detlint/detlint"}

if [ ! -x "$bin" ]; then
  echo "run_detlint.sh: detlint binary not found at $bin (build it first, or set DETLINT_BIN)" >&2
  exit 2
fi

baseline_args=""
if [ -f "$repo_root/tools/detlint_baseline.txt" ]; then
  baseline_args="--baseline $repo_root/tools/detlint_baseline.txt"
fi

# shellcheck disable=SC2086  # baseline_args is intentionally word-split
exec "$bin" --root "$repo_root" $baseline_args "$@" \
  src tools bench tests examples
