// detlint CLI — the determinism lint gate.
//
//   detlint [--root DIR] [--json] [--sarif FILE] [--baseline FILE]
//           [--write-baseline FILE] [--prune-baseline] [--jobs N]
//           [--allow-wall-clock SUBSTR]... [paths...]
//
// Paths default to src tools bench (the wrapper script adds tests and
// examples), resolved against --root (default "."). A baseline entry that no
// longer matches any finding is stale: stale entries are reported and fail
// the gate so baselines only ever shrink; --prune-baseline rewrites the
// baseline file without them instead. Exit codes: 0 clean, 1 findings or
// stale baseline entries, 2 usage or I/O error.

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "detlint.hpp"

namespace {

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--root DIR] [--json] [--sarif FILE] [--baseline FILE]\n"
               "          [--write-baseline FILE] [--prune-baseline] [--jobs N]\n"
               "          [--allow-wall-clock SUBSTR]... [paths...]\n",
               argv0);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  std::string root = ".";
  std::string baselinePath;
  std::string writeBaselinePath;
  std::string sarifPath;
  bool json = false;
  bool pruneBaseline = false;
  detlint::Options opts;
  opts.jobs = 0;  // CLI default: hardware concurrency
  std::vector<std::string> paths;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&](std::string& out) {
      if (i + 1 >= argc) return false;
      out = argv[++i];
      return true;
    };
    if (arg == "--json") {
      json = true;
    } else if (arg == "--root") {
      if (!value(root)) return usage(argv[0]);
    } else if (arg == "--baseline") {
      if (!value(baselinePath)) return usage(argv[0]);
    } else if (arg == "--write-baseline") {
      if (!value(writeBaselinePath)) return usage(argv[0]);
    } else if (arg == "--prune-baseline") {
      pruneBaseline = true;
    } else if (arg == "--sarif") {
      if (!value(sarifPath)) return usage(argv[0]);
    } else if (arg == "--jobs") {
      std::string s;
      if (!value(s)) return usage(argv[0]);
      opts.jobs = static_cast<unsigned>(std::strtoul(s.c_str(), nullptr, 10));
    } else if (arg == "--allow-wall-clock") {
      std::string s;
      if (!value(s)) return usage(argv[0]);
      opts.wallClockAllowlist.push_back(std::move(s));
    } else if (arg == "--help" || arg == "-h") {
      usage(argv[0]);
      return 0;
    } else if (!arg.empty() && arg[0] == '-') {
      std::fprintf(stderr, "detlint: unknown option '%s'\n", arg.c_str());
      return usage(argv[0]);
    } else {
      paths.push_back(arg);
    }
  }
  if (paths.empty()) paths = {"src", "tools", "bench"};
  if (pruneBaseline && baselinePath.empty()) {
    std::fprintf(stderr, "detlint: --prune-baseline requires --baseline\n");
    return 2;
  }

  std::vector<detlint::Finding> findings = detlint::scanTree(root, paths, opts);

  if (!writeBaselinePath.empty()) {
    std::ofstream out{writeBaselinePath};
    if (!out) {
      std::fprintf(stderr, "detlint: cannot write baseline '%s'\n",
                   writeBaselinePath.c_str());
      return 2;
    }
    out << detlint::Baseline::serialize(findings);
    std::fprintf(stderr, "detlint: wrote %zu finding(s) to %s\n",
                 findings.size(), writeBaselinePath.c_str());
    return 0;
  }

  bool staleFailure = false;
  if (!baselinePath.empty()) {
    detlint::Baseline baseline;
    if (!baseline.load(baselinePath)) {
      std::fprintf(stderr, "detlint: cannot read baseline '%s'\n",
                   baselinePath.c_str());
      return 2;
    }
    const std::vector<std::string> stale = baseline.staleKeys(findings);
    if (!stale.empty()) {
      if (pruneBaseline) {
        std::vector<std::string> kept;
        for (const std::string& k : baseline.keys()) {
          if (std::find(stale.begin(), stale.end(), k) == stale.end()) {
            kept.push_back(k);
          }
        }
        std::ofstream out{baselinePath};
        if (!out) {
          std::fprintf(stderr, "detlint: cannot rewrite baseline '%s'\n",
                       baselinePath.c_str());
          return 2;
        }
        out << detlint::Baseline::serializeKeys(std::move(kept));
        std::fprintf(stderr, "detlint: pruned %zu stale entr%s from %s\n",
                     stale.size(), stale.size() == 1 ? "y" : "ies",
                     baselinePath.c_str());
      } else {
        for (const std::string& k : stale) {
          std::fprintf(stderr,
                       "detlint: stale baseline entry '%s' matches no finding "
                       "(run --prune-baseline)\n",
                       k.c_str());
        }
        staleFailure = true;
      }
    }
    findings = detlint::applyBaseline(std::move(findings), baseline);
  }

  if (!sarifPath.empty()) {
    std::ofstream out{sarifPath};
    if (!out) {
      std::fprintf(stderr, "detlint: cannot write SARIF '%s'\n",
                   sarifPath.c_str());
      return 2;
    }
    out << detlint::formatSarif(findings);
  }

  std::cout << (json ? detlint::formatJson(findings)
                     : detlint::formatText(findings));
  if (!findings.empty() && !json) {
    std::fprintf(stderr, "detlint: %zu finding(s)\n", findings.size());
  }
  const int code = detlint::exitCodeFor(findings);
  return staleFailure && code == 0 ? 1 : code;
}
