// detlint CLI — the determinism lint gate.
//
//   detlint [--root DIR] [--json] [--baseline FILE] [--write-baseline FILE]
//           [--allow-wall-clock SUBSTR]... [paths...]
//
// Paths default to src tools bench (resolved against --root, default "."),
// matching the sim-visible tree. Exit codes: 0 clean, 1 findings, 2 usage or
// I/O error.

#include <cstdio>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "detlint.hpp"

namespace {

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--root DIR] [--json] [--baseline FILE]\n"
               "          [--write-baseline FILE] [--allow-wall-clock SUBSTR]...\n"
               "          [paths...]\n",
               argv0);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  std::string root = ".";
  std::string baselinePath;
  std::string writeBaselinePath;
  bool json = false;
  detlint::Options opts;
  std::vector<std::string> paths;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&](std::string& out) {
      if (i + 1 >= argc) return false;
      out = argv[++i];
      return true;
    };
    if (arg == "--json") {
      json = true;
    } else if (arg == "--root") {
      if (!value(root)) return usage(argv[0]);
    } else if (arg == "--baseline") {
      if (!value(baselinePath)) return usage(argv[0]);
    } else if (arg == "--write-baseline") {
      if (!value(writeBaselinePath)) return usage(argv[0]);
    } else if (arg == "--allow-wall-clock") {
      std::string s;
      if (!value(s)) return usage(argv[0]);
      opts.wallClockAllowlist.push_back(std::move(s));
    } else if (arg == "--help" || arg == "-h") {
      usage(argv[0]);
      return 0;
    } else if (!arg.empty() && arg[0] == '-') {
      std::fprintf(stderr, "detlint: unknown option '%s'\n", arg.c_str());
      return usage(argv[0]);
    } else {
      paths.push_back(arg);
    }
  }
  if (paths.empty()) paths = {"src", "tools", "bench"};

  std::vector<detlint::Finding> findings = detlint::scanTree(root, paths, opts);

  if (!writeBaselinePath.empty()) {
    std::ofstream out{writeBaselinePath};
    if (!out) {
      std::fprintf(stderr, "detlint: cannot write baseline '%s'\n",
                   writeBaselinePath.c_str());
      return 2;
    }
    out << detlint::Baseline::serialize(findings);
    std::fprintf(stderr, "detlint: wrote %zu finding(s) to %s\n",
                 findings.size(), writeBaselinePath.c_str());
    return 0;
  }

  if (!baselinePath.empty()) {
    detlint::Baseline baseline;
    if (!baseline.load(baselinePath)) {
      std::fprintf(stderr, "detlint: cannot read baseline '%s'\n",
                   baselinePath.c_str());
      return 2;
    }
    findings = detlint::applyBaseline(std::move(findings), baseline);
  }

  std::cout << (json ? detlint::formatJson(findings)
                     : detlint::formatText(findings));
  if (!findings.empty() && !json) {
    std::fprintf(stderr, "detlint: %zu finding(s)\n", findings.size());
  }
  return detlint::exitCodeFor(findings);
}
