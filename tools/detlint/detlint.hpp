#pragma once

// detlint — the determinism static-analysis pass.
//
// The simulator's scientific claim is that one seed produces one behaviour
// for any MSIM_THREADS. That property dies quietly: somebody range-iterates
// an unordered_map whose order feeds an event, or samples a wall clock, and
// no unit test notices until digests diverge weeks later. detlint walks the
// sim-visible tree (src/, tools/, bench/, tests/, examples/) with a
// lightweight lexer and a cross-file function index — no libclang — and
// enforces the project rules:
//
//   R1 unordered-iter  std::unordered_map / std::unordered_set in
//                      sim-visible code. Hash order is pointer- and
//                      libc-dependent; one range-for away from observable
//                      nondeterminism. Use util::FlatMap64 (slot order is a
//                      pure function of mutation history, forEachOrdered for
//                      sorted visits), std::map/std::set, or annotate.
//   R2 wall-clock      ambient time/entropy: std::random_device, rand,
//                      srand, time, clock, system_clock / steady_clock /
//                      high_resolution_clock, gettimeofday, ... outside an
//                      allowlisted shim. Simulations must draw time from
//                      Simulator::now() and randomness from Simulator::rng().
//   R3 pointer-key     containers keyed on pointers (std::map<T*, ...>,
//                      std::set<T*>, smart-pointer keys, uintptr_t keys):
//                      address order changes run to run, so any iteration or
//                      ordering over them is nondeterministic.
//   R4 pragma          detlint:allow pragma hygiene — unknown rule names,
//                      missing justifications, and `detlint:hotpath` marks
//                      that precede no function definition are themselves
//                      findings.
//   R5 thread-order    host-thread constructs whose effects depend on the OS
//                      scheduler, in sim-visible paths: std::this_thread
//                      (sleep_for / sleep_until / yield / get_id),
//                      std::mutex-family locks (lock acquisition order is a
//                      race — iteration or accumulation ordered by a mutex
//                      is nondeterministic), and thread-id-dependent
//                      branching (get_id). Parallel harnesses must be
//                      barrier-structured so results never depend on which
//                      worker ran what (see pdes/pdes.hpp), and simulated
//                      delays must come from Simulator scheduling, never
//                      host sleeps.
//   R6 hotpath-alloc   a `detlint:hotpath` comment mark (or the MSIM_HOT
//                      macro from util/hotpath.hpp) on a function definition
//                      declares its steady-state path allocation-free — the
//                      static twin of the bench_diff --max-alloc gates.
//                      detlint walks the call graph from every marked root
//                      (cross-file, through the include graph) and flags
//                      allocation-prone constructs in every reachable body:
//                      `new`, make_unique/make_shared, std::function and
//                      std::string/ostringstream/to_string construction,
//                      appends to containers with no reserve/clear/resize/
//                      pop_back in their file, and sized std::vector
//                      construction. Warm-up and amortized sites carry
//                      detlint:allow(hotpath-alloc) with a justification.
//   R7 float-order     order-nondeterministic float reductions:
//                      std::reduce / std::transform_reduce, std::execution
//                      policies, fast-math / fp-contract / OpenMP-reduction
//                      pragmas, and float accumulation inside range-fors
//                      over unordered containers. Float addition does not
//                      commute, so any of these makes the sum depend on
//                      visit order.
//   R8 iter-invalidate mutation of a container inside its own range-for
//                      (erase/insert/push_back/... on the ranged container)
//                      — the class of bug that kept FlatMap64::erase's
//                      backward-shift latent for six PRs. Collect first,
//                      mutate after the loop.
//
// Suppression grammar (inside any comment):
//   // detlint:allow(<rule>[,<rule>...]) <justification>       line + next
//   // detlint:allow-file(<rule>[,<rule>...]) <justification>  whole file
//
// Hot-path annotation (R6 roots; see DESIGN.md §14 for the contract):
//   // `detlint:hotpath` <why this path must not allocate>  — marks the next
//   definition; MSIM_HOT on the definition line does the same. (Backticked
//   mentions like the one above are documentation, not marks.)
//
// A baseline file (one "<file>:<line>:<rule>" per line, '#' comments) lets
// pre-existing findings be burned down incrementally; the CI gate keeps the
// tree at zero findings outside the baseline and fails on stale baseline
// entries that no longer match anything.

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace detlint {

enum class Rule : std::uint8_t {
  UnorderedIter,   // R1
  WallClock,       // R2
  PointerKey,      // R3
  Pragma,          // R4
  ThreadOrder,     // R5
  HotPathAlloc,    // R6
  FloatOrder,      // R7
  IterInvalidate,  // R8
};

[[nodiscard]] const char* ruleName(Rule r);
/// Parses a rule name ("unordered-iter", ...); returns false when unknown.
[[nodiscard]] bool ruleFromName(std::string_view name, Rule& out);

struct Finding {
  std::string file;  // as reported (relative to --root when walking a tree)
  int line{1};
  Rule rule{Rule::UnorderedIter};
  std::string message;

  /// Stable identity used by baselines: "<file>:<line>:<rule>".
  [[nodiscard]] std::string key() const;
};

struct Options {
  /// Path substrings exempt from R2 (the sanctioned wall-clock shim and any
  /// explicitly blessed tooling).
  std::vector<std::string> wallClockAllowlist;
  /// Worker threads for the per-file scan phase; 0 = hardware concurrency.
  /// Output is deterministic for any value (files merge in sorted order).
  unsigned jobs{1};
};

/// One in-memory source file for scanSources (the multi-file API the
/// cross-file rules need; also how fixtures test R6 without touching disk).
struct SourceFile {
  std::string name;
  std::string text;
};

/// Scans one translation unit's source text. `filename` is used for
/// reporting and for the R2 allowlist match. Cross-file rules see only this
/// file (a single file can still carry hot roots and local call chains).
[[nodiscard]] std::vector<Finding> scanSource(std::string_view source,
                                              std::string_view filename,
                                              const Options& opts = {});

/// Scans a set of sources as one tree: per-file rules on each file, then the
/// cross-file R6 walk over the combined index. Findings come back grouped in
/// input-file order, sorted by line within a file, independent of
/// `opts.jobs`.
[[nodiscard]] std::vector<Finding> scanSources(
    const std::vector<SourceFile>& files, const Options& opts = {});

/// Scans every C++ source file (.hpp/.h/.hxx/.cpp/.cc/.cxx) under `paths`
/// (files or directories, resolved against `root`), reporting file names
/// relative to `root`. The walk order is sorted, so output is stable.
[[nodiscard]] std::vector<Finding> scanTree(const std::string& root,
                                            const std::vector<std::string>& paths,
                                            const Options& opts = {});

/// Baseline: findings already known and tolerated. Matching is by exact
/// Finding::key().
class Baseline {
 public:
  /// Loads "<file>:<line>:<rule>" lines; '#' starts a comment. Returns false
  /// when the file cannot be read.
  bool load(const std::string& path);
  [[nodiscard]] bool covers(const Finding& f) const;
  [[nodiscard]] std::size_t size() const { return keys_.size(); }

  /// Keys that match none of `findings` — stale entries that should be
  /// pruned (the gate fails on them so baselines only ever shrink).
  [[nodiscard]] std::vector<std::string> staleKeys(
      const std::vector<Finding>& findings) const;

  /// Serializes findings in baseline format (sorted, deduplicated).
  [[nodiscard]] static std::string serialize(const std::vector<Finding>& findings);
  /// Serializes raw keys in baseline format (sorted, deduplicated).
  [[nodiscard]] static std::string serializeKeys(std::vector<std::string> keys);

  [[nodiscard]] const std::vector<std::string>& keys() const { return keys_; }

 private:
  std::vector<std::string> keys_;  // sorted for binary search
};

/// Drops findings covered by the baseline.
[[nodiscard]] std::vector<Finding> applyBaseline(std::vector<Finding> findings,
                                                 const Baseline& baseline);

/// Human-readable report, one "file:line: [rule] message" per finding.
[[nodiscard]] std::string formatText(const std::vector<Finding>& findings);

/// Machine-readable report: a JSON array of {file, line, rule, message}.
[[nodiscard]] std::string formatJson(const std::vector<Finding>& findings);

/// SARIF 2.1.0 report (what CI uploads so findings annotate PRs inline).
[[nodiscard]] std::string formatSarif(const std::vector<Finding>& findings);

/// Gate exit code: 0 clean, 1 findings present.
[[nodiscard]] inline int exitCodeFor(const std::vector<Finding>& findings) {
  return findings.empty() ? 0 : 1;
}

}  // namespace detlint
