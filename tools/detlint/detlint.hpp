#pragma once

// detlint — the determinism static-analysis pass.
//
// The simulator's scientific claim is that one seed produces one behaviour
// for any MSIM_THREADS. That property dies quietly: somebody range-iterates
// an unordered_map whose order feeds an event, or samples a wall clock, and
// no unit test notices until digests diverge weeks later. detlint walks the
// sim-visible tree (src/, tools/, bench/) with a lightweight lexer — no
// libclang — and enforces the project rules:
//
//   R1 unordered-iter  std::unordered_map / std::unordered_set in
//                      sim-visible code. Hash order is pointer- and
//                      libc-dependent; one range-for away from observable
//                      nondeterminism. Use util::FlatMap64 (slot order is a
//                      pure function of mutation history, forEachOrdered for
//                      sorted visits), std::map/std::set, or annotate.
//   R2 wall-clock      ambient time/entropy: std::random_device, rand,
//                      srand, time, clock, system_clock / steady_clock /
//                      high_resolution_clock, gettimeofday, ... outside an
//                      allowlisted shim. Simulations must draw time from
//                      Simulator::now() and randomness from Simulator::rng().
//   R3 pointer-key     containers keyed on pointers (std::map<T*, ...>,
//                      std::set<T*>, smart-pointer keys, uintptr_t keys):
//                      address order changes run to run, so any iteration or
//                      ordering over them is nondeterministic.
//   R4 pragma          detlint:allow pragma hygiene — unknown rule names and
//                      missing justifications are themselves findings.
//   R5 thread-order    host-thread constructs whose effects depend on the OS
//                      scheduler, in sim-visible paths: std::this_thread
//                      (sleep_for / sleep_until / yield / get_id),
//                      std::mutex-family locks (lock acquisition order is a
//                      race — iteration or accumulation ordered by a mutex
//                      is nondeterministic), and thread-id-dependent
//                      branching (get_id). Parallel harnesses must be
//                      barrier-structured so results never depend on which
//                      worker ran what (see pdes/pdes.hpp), and simulated
//                      delays must come from Simulator scheduling, never
//                      host sleeps.
//
// Suppression grammar (inside any comment):
//   // detlint:allow(<rule>[,<rule>...]) <justification>       line + next
//   // detlint:allow-file(<rule>[,<rule>...]) <justification>  whole file
//
// A baseline file (one "<file>:<line>:<rule>" per line, '#' comments) lets
// pre-existing findings be burned down incrementally; the CI gate keeps the
// tree at zero findings outside the baseline.

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace detlint {

enum class Rule : std::uint8_t {
  UnorderedIter,  // R1
  WallClock,      // R2
  PointerKey,     // R3
  Pragma,         // R4
  ThreadOrder,    // R5
};

[[nodiscard]] const char* ruleName(Rule r);
/// Parses a rule name ("unordered-iter", ...); returns false when unknown.
[[nodiscard]] bool ruleFromName(std::string_view name, Rule& out);

struct Finding {
  std::string file;  // as reported (relative to --root when walking a tree)
  int line{1};
  Rule rule{Rule::UnorderedIter};
  std::string message;

  /// Stable identity used by baselines: "<file>:<line>:<rule>".
  [[nodiscard]] std::string key() const;
};

struct Options {
  /// Path substrings exempt from R2 (the sanctioned wall-clock shim and any
  /// explicitly blessed tooling).
  std::vector<std::string> wallClockAllowlist;
};

/// Scans one translation unit's source text. `filename` is used for
/// reporting and for the R2 allowlist match.
[[nodiscard]] std::vector<Finding> scanSource(std::string_view source,
                                              std::string_view filename,
                                              const Options& opts = {});

/// Scans every C++ source file (.hpp/.h/.hxx/.cpp/.cc/.cxx) under `paths`
/// (files or directories, resolved against `root`), reporting file names
/// relative to `root`. The walk order is sorted, so output is stable.
[[nodiscard]] std::vector<Finding> scanTree(const std::string& root,
                                            const std::vector<std::string>& paths,
                                            const Options& opts = {});

/// Baseline: findings already known and tolerated. Matching is by exact
/// Finding::key().
class Baseline {
 public:
  /// Loads "<file>:<line>:<rule>" lines; '#' starts a comment. Returns false
  /// when the file cannot be read.
  bool load(const std::string& path);
  [[nodiscard]] bool covers(const Finding& f) const;
  [[nodiscard]] std::size_t size() const { return keys_.size(); }

  /// Serializes findings in baseline format (sorted, deduplicated).
  [[nodiscard]] static std::string serialize(const std::vector<Finding>& findings);

 private:
  std::vector<std::string> keys_;  // sorted for binary search
};

/// Drops findings covered by the baseline.
[[nodiscard]] std::vector<Finding> applyBaseline(std::vector<Finding> findings,
                                                 const Baseline& baseline);

/// Human-readable report, one "file:line: [rule] message" per finding.
[[nodiscard]] std::string formatText(const std::vector<Finding>& findings);

/// Machine-readable report: a JSON array of {file, line, rule, message}.
[[nodiscard]] std::string formatJson(const std::vector<Finding>& findings);

/// Gate exit code: 0 clean, 1 findings present.
[[nodiscard]] inline int exitCodeFor(const std::vector<Finding>& findings) {
  return findings.empty() ? 0 : 1;
}

}  // namespace detlint
