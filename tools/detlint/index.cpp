#include "index.hpp"

#include <algorithm>
#include <deque>

namespace detlint {

namespace {

/// Keywords that look like `name(...)` but are never function definitions
/// or resolvable calls.
bool keywordName(std::string_view id) {
  return id == "if" || id == "for" || id == "while" || id == "switch" ||
         id == "return" || id == "sizeof" || id == "catch" || id == "new" ||
         id == "delete" || id == "throw" || id == "alignof" ||
         id == "alignas" || id == "decltype" || id == "typeid" ||
         id == "static_assert" || id == "noexcept" || id == "co_await" ||
         id == "co_return" || id == "co_yield" || id == "defined" ||
         id == "operator" || id == "requires" || id == "assert";
}

bool specifierName(std::string_view id) {
  return id == "const" || id == "noexcept" || id == "override" ||
         id == "final" || id == "mutable" || id == "try";
}

struct DefParse {
  std::size_t bodyBegin{0};
  std::size_t bodyEnd{0};
};

/// Tries to parse a function definition whose name is toks[i] (already known
/// to be a non-keyword identifier followed by '('). Handles specifier runs
/// (`const noexcept override`), trailing return types, and constructor
/// initializer lists; declarations (`;`) and `= default/delete` fail.
bool tryParseDef(const std::vector<Token>& toks, std::size_t i, DefParse& out) {
  const std::size_t n = toks.size();
  std::size_t j = skipBalancedTokens(toks, i + 1, '(', ')');
  if (j == 0) return false;
  while (j < n && toks[j].ident && specifierName(toks[j].text)) {
    if (toks[j].text == "noexcept" && j + 1 < n && isPunct(toks[j + 1], '(')) {
      j = skipBalancedTokens(toks, j + 1, '(', ')');
      if (j == 0) return false;
    } else {
      ++j;
    }
  }
  if (j + 1 < n && isPunct(toks[j], '-') && isPunct(toks[j + 1], '>')) {
    j += 2;  // trailing return type: skip type tokens until the body/stop
    int angle = 0;
    while (j < n) {
      const Token& t = toks[j];
      if (t.ident) {
        ++j;
        continue;
      }
      const char c = t.text[0];
      if (c == '<') ++angle;
      if (c == '>' && angle > 0) {
        --angle;
        ++j;
        continue;
      }
      if (c == '<' || c == ':' || c == '*' || c == '&' || c == ',' ||
          c == '[' || c == ']') {
        ++j;
        continue;
      }
      if (c == '(') {
        j = skipBalancedTokens(toks, j, '(', ')');
        if (j == 0) return false;
        continue;
      }
      break;
    }
  }
  if (j >= n) return false;
  if (isPunct(toks[j], '{')) {
    out.bodyBegin = j;
  } else if (isPunct(toks[j], ':') && !(j + 1 < n && isPunct(toks[j + 1], ':'))) {
    // Constructor initializer list: `name(args) [, ...] { body }` entries.
    ++j;
    for (;;) {
      bool sawName = false;
      while (j < n) {
        if (toks[j].ident) {
          sawName = true;
          ++j;
          continue;
        }
        if (isPunct(toks[j], ':')) {
          ++j;
          continue;
        }
        if (isPunct(toks[j], '<')) {
          const std::size_t past = skipAngleTokens(toks, j);
          if (past == 0) return false;
          j = past;
          continue;
        }
        break;
      }
      if (!sawName || j >= n) return false;
      if (isPunct(toks[j], '(')) {
        j = skipBalancedTokens(toks, j, '(', ')');
      } else if (isPunct(toks[j], '{')) {
        j = skipBalancedTokens(toks, j, '{', '}');
      } else {
        return false;
      }
      if (j == 0 || j >= n) return false;
      while (j < n && isPunct(toks[j], '.')) ++j;  // pack expansion `...`
      if (j < n && isPunct(toks[j], ',')) {
        ++j;
        continue;
      }
      break;
    }
    if (j >= n || !isPunct(toks[j], '{')) return false;
    out.bodyBegin = j;
  } else {
    return false;
  }
  out.bodyEnd = skipBalancedTokens(toks, out.bodyBegin, '{', '}');
  return out.bodyEnd != 0;
}

/// True when a MSIM_HOT marker token sits in the declaration run leading up
/// to the definition name at toks[i] (scanning back to the previous
/// statement/brace boundary).
bool hasHotMacro(const std::vector<Token>& toks, std::size_t i) {
  const std::size_t floor = i > 48 ? i - 48 : 0;
  for (std::size_t p = i; p-- > floor;) {
    const Token& t = toks[p];
    if (!t.ident) {
      const char c = t.text[0];
      if (c == ';' || c == '{' || c == '}') return false;
      continue;
    }
    if (t.text == "MSIM_HOT") return true;
  }
  return false;
}

/// Extracts call sites and allocation-prone constructs from a body range.
/// Appends to `def`; `pendingAppends` collects push_back/emplace receivers
/// whose amortization check needs the whole file.
struct PendingAppend {
  std::size_t defIdx;
  int line;
  std::string chain;      // full receiver chain, for the message
  std::string container;  // last chain component, matched against reserves
};

void extractBody(const std::vector<Token>& toks, std::size_t defIdx,
                 FunctionDef& def, std::vector<PendingAppend>& pendingAppends) {
  for (std::size_t k = def.bodyBegin + 1; k + 1 < def.bodyEnd; ++k) {
    const Token& t = toks[k];
    if (!t.ident) continue;
    const std::string_view id = t.text;

    if (id == "new") {
      // `new (place) T` / `::new (buf) T` are placement news — they do not
      // allocate; `new T(...)` / `new T[n]` do.
      if (k + 1 < def.bodyEnd && toks[k + 1].ident) {
        def.allocs.push_back(
            {t.line, "operator new (`new " + toks[k + 1].text + "`)"});
      }
      continue;
    }
    if ((id == "make_unique" || id == "make_shared") && k + 1 < def.bodyEnd &&
        (isPunct(toks[k + 1], '<') || isPunct(toks[k + 1], '('))) {
      def.allocs.push_back({t.line, "std::" + std::string{id}});
      continue;
    }
    if (id == "function" && qualifierAt(toks, k) == "std") {
      def.allocs.push_back(
          {t.line, "std::function (type-erased callable; construction may "
                   "heap-allocate)"});
      continue;
    }
    if ((id == "string" && qualifierAt(toks, k) == "std") ||
        id == "ostringstream" || id == "stringstream") {
      def.allocs.push_back({t.line, "std::" + std::string{id} + " construction"});
      continue;
    }
    if (id == "to_string" && k + 1 < def.bodyEnd && isPunct(toks[k + 1], '(')) {
      def.allocs.push_back({t.line, "std::to_string (returns a std::string)"});
      continue;
    }
    if (id == "vector" && k + 1 < def.bodyEnd && isPunct(toks[k + 1], '<')) {
      const std::size_t past = skipAngleTokens(toks, k + 1);
      if (past != 0 && past < def.bodyEnd) {
        std::size_t v = past;
        if (v < def.bodyEnd && toks[v].ident) ++v;  // named local vs temporary
        const bool sizedParen = v + 1 < def.bodyEnd && isPunct(toks[v], '(') &&
                                !isPunct(toks[v + 1], ')');
        const bool sizedBrace = v + 1 < def.bodyEnd && isPunct(toks[v], '{') &&
                                !isPunct(toks[v + 1], '}');
        if (sizedParen || sizedBrace) {
          def.allocs.push_back({t.line, "sized std::vector construction"});
        }
      }
      continue;
    }

    const bool call = k + 1 < def.bodyEnd && isPunct(toks[k + 1], '(');
    if (!call || keywordName(id)) continue;
    CallSite cs;
    cs.name = t.text;
    cs.line = t.line;
    if (memberAccessAt(toks, k)) {
      cs.member = true;
      cs.receiver = receiverChainAt(toks, k);
      if (id == "push_back" || id == "emplace_back" || id == "emplace") {
        PendingAppend pa;
        pa.defIdx = defIdx;
        pa.line = t.line;
        pa.chain = cs.receiver;
        const std::size_t dot = pa.chain.rfind('.');
        pa.container =
            dot == std::string::npos ? pa.chain : pa.chain.substr(dot + 1);
        if (!pa.container.empty()) pendingAppends.push_back(std::move(pa));
      }
    } else {
      cs.qualifier = std::string{qualifierAt(toks, k)};
    }
    def.calls.push_back(std::move(cs));
  }
}

std::string stemOf(std::string_view path) {
  const std::size_t slash = path.find_last_of('/');
  std::string_view base =
      slash == std::string_view::npos ? path : path.substr(slash + 1);
  const std::size_t dot = base.find_last_of('.');
  return std::string{dot == std::string_view::npos ? base : base.substr(0, dot)};
}

bool isCppFile(std::string_view path) {
  const std::size_t dot = path.find_last_of('.');
  if (dot == std::string_view::npos) return false;
  const std::string_view ext = path.substr(dot);
  return ext == ".cpp" || ext == ".cc" || ext == ".cxx";
}

}  // namespace

FileIndex buildFileIndex(const LexResult& lexed, std::string_view filename) {
  FileIndex out;
  out.file = std::string{filename};
  out.includes = lexed.includes;
  const std::vector<Token>& toks = lexed.tokens;
  const std::size_t n = toks.size();

  std::vector<PendingAppend> pendingAppends;
  std::size_t i = 0;
  while (i < n) {
    const Token& t = toks[i];
    const bool defCandidate =
        t.ident && !keywordName(t.text) && i + 1 < n &&
        isPunct(toks[i + 1], '(') && !memberAccessAt(toks, i) &&
        !(i >= 1 && toks[i - 1].ident && toks[i - 1].text == "new");
    if (defCandidate) {
      DefParse parse;
      if (tryParseDef(toks, i, parse)) {
        FunctionDef def;
        def.name = t.text;
        def.qualifier = std::string{qualifierAt(toks, i)};
        def.line = t.line;
        def.hot = hasHotMacro(toks, i);
        def.bodyBegin = parse.bodyBegin;
        def.bodyEnd = parse.bodyEnd;
        extractBody(toks, out.defs.size(), def, pendingAppends);
        out.defs.push_back(std::move(def));
        i = parse.bodyEnd;
        continue;
      }
    }
    ++i;
  }

  // Amortization check for appends: a container that is also reserved,
  // cleared, resized, or popped somewhere in this file is pool/ring-style
  // recycled capacity — its appends reach steady state without allocating.
  std::vector<std::string> amortized;
  for (std::size_t k = 0; k + 1 < n; ++k) {
    const Token& t = toks[k];
    if (!t.ident || !isPunct(toks[k + 1], '(')) continue;
    if (t.text != "reserve" && t.text != "clear" && t.text != "resize" &&
        t.text != "pop_back") {
      continue;
    }
    if (!memberAccessAt(toks, k)) continue;
    const std::string chain = receiverChainAt(toks, k);
    const std::size_t dot = chain.rfind('.');
    const std::string container =
        dot == std::string::npos ? chain : chain.substr(dot + 1);
    if (!container.empty()) amortized.push_back(container);
  }
  std::sort(amortized.begin(), amortized.end());
  for (const PendingAppend& pa : pendingAppends) {
    if (std::binary_search(amortized.begin(), amortized.end(), pa.container)) {
      continue;
    }
    out.defs[pa.defIdx].allocs.push_back(
        {pa.line, "append to '" + pa.chain + "' (no reserve/clear/resize/"
                  "pop_back for it in this file — growth allocates)"});
  }

  // Attach hot marks to the next definition at or below the mark.
  for (const HotMark& mark : lexed.hotMarks) {
    FunctionDef* target = nullptr;
    for (FunctionDef& def : out.defs) {
      if (def.line >= mark.line) {
        target = &def;
        break;
      }
    }
    if (target == nullptr) {
      out.unattachedHotMarks.push_back(mark.line);
      continue;
    }
    target->hot = true;
    if (target->hotWhy.empty()) target->hotWhy = mark.why;
  }
  return out;
}

FileIndex indexSource(std::string_view source, std::string_view filename) {
  return buildFileIndex(lex(source), filename);
}

std::vector<HotPathAlloc> walkHotPaths(const std::vector<FileIndex>& files) {
  const std::size_t nf = files.size();

  // Resolve includes by path suffix: `#include "session/hub.hpp"` matches
  // the scanned file `src/session/hub.hpp`.
  auto resolveInclude = [&](const std::string& target,
                            std::vector<std::size_t>& out) {
    for (std::size_t g = 0; g < nf; ++g) {
      const std::string& name = files[g].file;
      if (name == target ||
          (name.size() > target.size() + 1 &&
           name.compare(name.size() - target.size(), target.size(), target) == 0 &&
           name[name.size() - target.size() - 1] == '/')) {
        out.push_back(g);
      }
    }
  };
  std::vector<std::vector<std::size_t>> edges(nf);
  for (std::size_t f = 0; f < nf; ++f) {
    for (const Include& inc : files[f].includes) {
      if (!inc.angled) resolveInclude(inc.target, edges[f]);
    }
  }

  // Transitive include closure (matrix form; the scanned tree is a few
  // hundred files, so nf^2 bits is nothing).
  std::vector<std::vector<char>> closure(nf, std::vector<char>(nf, 0));
  for (std::size_t f = 0; f < nf; ++f) {
    std::deque<std::size_t> queue{f};
    closure[f][f] = 1;
    while (!queue.empty()) {
      const std::size_t cur = queue.front();
      queue.pop_front();
      for (const std::size_t next : edges[cur]) {
        if (closure[f][next] == 0) {
          closure[f][next] = 1;
          queue.push_back(next);
        }
      }
    }
  }

  // A .cpp is "paired" with the first directly-included header sharing its
  // stem (grid.cpp ↔ interest/grid.hpp). Callers that can see the header can
  // reach the out-of-line definitions in the paired .cpp.
  constexpr std::size_t kNone = static_cast<std::size_t>(-1);
  std::vector<std::size_t> paired(nf, kNone);
  for (std::size_t f = 0; f < nf; ++f) {
    if (!isCppFile(files[f].file)) continue;
    const std::string stem = stemOf(files[f].file);
    for (const std::size_t g : edges[f]) {
      if (g != f && stemOf(files[g].file) == stem) {
        paired[f] = g;
        break;
      }
    }
  }

  auto eligible = [&](std::size_t caller, std::size_t defFile) {
    if (caller == defFile || closure[caller][defFile] != 0) return true;
    const std::size_t header = paired[defFile];
    return header != kNone &&
           (header == caller || closure[caller][header] != 0);
  };

  struct DefRef {
    std::size_t f;
    std::size_t d;
  };
  // Name → definitions, in deterministic (file, def) order.
  std::vector<std::pair<std::string_view, DefRef>> byName;
  for (std::size_t f = 0; f < nf; ++f) {
    for (std::size_t d = 0; d < files[f].defs.size(); ++d) {
      byName.emplace_back(files[f].defs[d].name, DefRef{f, d});
    }
  }
  std::stable_sort(byName.begin(), byName.end(),
                   [](const auto& a, const auto& b) { return a.first < b.first; });

  struct Visit {
    bool seen{false};
    std::size_t parentF{0}, parentD{0};
    bool isRoot{false};
    std::size_t rootF{0}, rootD{0};
  };
  std::vector<std::vector<Visit>> visits(nf);
  for (std::size_t f = 0; f < nf; ++f) visits[f].resize(files[f].defs.size());

  std::vector<DefRef> order;  // visitation order, for deterministic output
  std::deque<DefRef> queue;
  auto visit = [&](DefRef ref, const Visit& v) {
    Visit& slot = visits[ref.f][ref.d];
    if (slot.seen) return;
    slot = v;
    slot.seen = true;
    order.push_back(ref);
    queue.push_back(ref);
  };

  for (std::size_t f = 0; f < nf; ++f) {
    for (std::size_t d = 0; d < files[f].defs.size(); ++d) {
      if (!files[f].defs[d].hot) continue;
      Visit v;
      v.isRoot = true;
      v.rootF = f;
      v.rootD = d;
      visit(DefRef{f, d}, v);
      while (!queue.empty()) {
        const DefRef cur = queue.front();
        queue.pop_front();
        const FunctionDef& def = files[cur.f].defs[cur.d];
        for (const CallSite& cs : def.calls) {
          const auto lo = std::lower_bound(
              byName.begin(), byName.end(), cs.name,
              [](const auto& entry, const std::string& name) {
                return entry.first < name;
              });
          for (auto it = lo; it != byName.end() && it->first == cs.name; ++it) {
            const DefRef target = it->second;
            const FunctionDef& callee = files[target.f].defs[target.d];
            if (!eligible(cur.f, target.f)) continue;
            if (!cs.qualifier.empty() && cs.qualifier != "std" &&
                !callee.qualifier.empty() && callee.qualifier != cs.qualifier) {
              continue;
            }
            Visit v2;
            v2.parentF = cur.f;
            v2.parentD = cur.d;
            v2.rootF = visits[cur.f][cur.d].rootF;
            v2.rootD = visits[cur.f][cur.d].rootD;
            visit(target, v2);
          }
        }
      }
    }
  }

  std::vector<HotPathAlloc> out;
  for (const DefRef ref : order) {
    const FunctionDef& def = files[ref.f].defs[ref.d];
    if (def.allocs.empty()) continue;
    const Visit& v = visits[ref.f][ref.d];
    const FunctionDef& root = files[v.rootF].defs[v.rootD];
    // Reconstruct the call chain root -> ... -> def (capped for sanity).
    std::vector<std::string> chain;
    DefRef cur = ref;
    for (int hop = 0; hop < 12; ++hop) {
      chain.push_back(files[cur.f].defs[cur.d].display());
      const Visit& cv = visits[cur.f][cur.d];
      if (cv.isRoot) break;
      cur = DefRef{cv.parentF, cv.parentD};
    }
    std::reverse(chain.begin(), chain.end());
    std::string path;
    for (const std::string& link : chain) {
      if (!path.empty()) path += " -> ";
      path += link;
    }
    for (const AllocSite& site : def.allocs) {
      HotPathAlloc hit;
      hit.fileIdx = ref.f;
      hit.line = site.line;
      hit.what = site.what;
      hit.root = root.display();
      hit.rootFile = files[v.rootF].file;
      hit.rootLine = root.line;
      hit.path = path;
      out.push_back(std::move(hit));
    }
  }
  return out;
}

}  // namespace detlint
