#pragma once

// detlint lexing layer.
//
// One pass over raw source text produces everything the per-file rule engine
// and the cross-file indexer consume: identifier/punctuation tokens with
// comments and string/char literals stripped (so banned names inside strings
// or prose can never match a rule), suppression pragmas, hot-path marks,
// #include targets, and raw preprocessor directive text (R7 needs to see
// `#pragma omp reduction` / fast-math pragmas even though directives never
// become tokens).

#include <string>
#include <string_view>
#include <vector>

#include "detlint.hpp"

namespace detlint {

/// One significant element of the source: an identifier or a single
/// punctuation character.
struct Token {
  std::string text;  // identifier text, or one punctuation char
  int line{1};
  bool ident{false};
};

/// A `detlint:allow` / `detlint:allow-file` suppression found in a comment.
struct Pragma {
  int line{1};              // line the pragma text sits on
  bool fileScope{false};    // allow-file
  std::vector<Rule> rules;  // rules it suppresses
  bool malformed{false};    // unknown rule or missing justification
  std::string error;        // R4 message when malformed
};

/// A `detlint:hotpath` mark: the next function definition at or below this
/// line is an R6 root whose reachable call tree must not allocate.
struct HotMark {
  int line{1};
  std::string why;  // rest of the marker's physical line (the justification)
};

/// One `#include` directive.
struct Include {
  int line{1};
  std::string target;  // path as written, quotes/brackets stripped
  bool angled{false};  // <system> include (never resolved within the tree)
};

/// A raw preprocessor directive (continuations joined), kept for R7's
/// pragma checks. Text starts at '#'.
struct PpDirective {
  int line{1};
  std::string text;
};

struct LexResult {
  std::vector<Token> tokens;
  std::vector<Pragma> pragmas;
  std::vector<HotMark> hotMarks;
  std::vector<Include> includes;
  std::vector<PpDirective> directives;
};

[[nodiscard]] bool isPunct(const Token& t, char c);
[[nodiscard]] std::string_view trimView(std::string_view s);

/// True when toks[i] is reached through `.` or `->` (member access).
[[nodiscard]] bool memberAccessAt(const std::vector<Token>& toks,
                                  std::size_t i);

/// Identifier qualifying toks[i] via `::`, or empty when unqualified.
[[nodiscard]] std::string_view qualifierAt(const std::vector<Token>& toks,
                                           std::size_t i);

/// Normalized receiver chain of the member access reaching toks[i]
/// (`a.b` for `a.b.callee(...)`, leading `this` stripped); empty when the
/// receiver is an expression (`f().callee(...)`).
[[nodiscard]] std::string receiverChainAt(const std::vector<Token>& toks,
                                          std::size_t i);

/// Index one past the token matching toks[at] (an `open` punct); 0 on
/// failure. Only `open`/`close` affect depth, so lambdas inside argument
/// lists and parens inside bodies cannot desynchronize the match.
[[nodiscard]] std::size_t skipBalancedTokens(const std::vector<Token>& toks,
                                             std::size_t at, char open,
                                             char close);

/// Index one past a balanced template-argument list starting at '<'; 0 when
/// it never closes (then the '<' was a comparison, not a template).
[[nodiscard]] std::size_t skipAngleTokens(const std::vector<Token>& toks,
                                          std::size_t at);

/// Strips comments, string literals (including raw strings), char literals,
/// and preprocessor directives; returns tokens plus the comment-carried
/// pragmas/hot marks and the directive-carried includes/pragma text.
[[nodiscard]] LexResult lex(std::string_view src);

/// Line numbers that carry at least one code token, sorted ascending.
[[nodiscard]] std::vector<int> codeLines(const std::vector<Token>& toks);

}  // namespace detlint
