#include "detlint.hpp"

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>

namespace detlint {

namespace {

// ---------------------------------------------------------------- lexing

// One significant element of the source: an identifier or a single
// punctuation character. Comments and string/char literals never become
// tokens (pragmas are collected separately), so rule matching cannot be
// fooled by banned names inside strings or prose.
struct Token {
  std::string text;  // identifier text, or one punctuation char
  int line{1};
  bool ident{false};
};

struct Pragma {
  int line{1};              // line the pragma text sits on
  bool fileScope{false};    // allow-file
  std::vector<Rule> rules;  // rules it suppresses
  bool malformed{false};    // unknown rule or missing justification
  std::string error;        // R4 message when malformed
};

struct LexResult {
  std::vector<Token> tokens;
  std::vector<Pragma> pragmas;
};

bool identStart(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}
bool identChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

std::string_view trim(std::string_view s) {
  while (!s.empty() && std::isspace(static_cast<unsigned char>(s.front()))) {
    s.remove_prefix(1);
  }
  while (!s.empty() && std::isspace(static_cast<unsigned char>(s.back()))) {
    s.remove_suffix(1);
  }
  return s;
}

/// Parses every `detlint:allow...` marker inside one comment whose text
/// starts at `startLine`. The justification must follow the rule list on the
/// same physical line (continuation lines are free-form prose).
void parsePragmas(std::string_view comment, int startLine,
                  std::vector<Pragma>& out) {
  std::size_t searchFrom = 0;
  for (;;) {
    const std::size_t at = comment.find("detlint:allow", searchFrom);
    if (at == std::string_view::npos) return;
    Pragma pragma;
    pragma.line = startLine + static_cast<int>(std::count(
                                  comment.begin(), comment.begin() + static_cast<std::ptrdiff_t>(at), '\n'));
    std::size_t i = at + std::string_view{"detlint:allow"}.size();
    if (comment.substr(i, 5) == "-file") {
      pragma.fileScope = true;
      i += 5;
    }
    // Prose *mentioning* the pragma ("the detlint:allow marker...") is not a
    // pragma: only the marker immediately followed by '(' is. A real typo
    // here leaves the underlying finding unsuppressed, so it cannot hide.
    if (i >= comment.size() || comment[i] != '(') {
      searchFrom = i;
      continue;
    }
    ++i;  // past '('
    const std::size_t close = comment.find(')', i);
    if (close == std::string_view::npos) {
      pragma.malformed = true;
      pragma.error = "malformed detlint:allow pragma: missing ')'";
      out.push_back(std::move(pragma));
      searchFrom = i;
      continue;
    }
    // Comma-separated rule names. Grammar metacharacters mean this is
    // documentation *about* the pragma (`detlint:allow(<rule>[,...])`), not a
    // pragma — skip it without a finding.
    std::string_view list = comment.substr(i, close - i);
    if (list.find_first_of("<>[]|.") != std::string_view::npos) {
      searchFrom = close;
      continue;
    }
    while (!list.empty()) {
      const std::size_t comma = list.find(',');
      const std::string_view name = trim(list.substr(0, comma));
      Rule rule;
      if (!ruleFromName(name, rule)) {
        pragma.malformed = true;
        pragma.error = "unknown rule '" + std::string{name} +
                       "' in detlint:allow (expected unordered-iter, "
                       "wall-clock, pointer-key, thread-order)";
        break;
      }
      pragma.rules.push_back(rule);
      if (comma == std::string_view::npos) break;
      list.remove_prefix(comma + 1);
    }
    // Justification: the rest of the pragma's physical line.
    if (!pragma.malformed) {
      std::size_t lineEnd = comment.find('\n', close);
      if (lineEnd == std::string_view::npos) lineEnd = comment.size();
      const std::string_view justification =
          trim(comment.substr(close + 1, lineEnd - close - 1));
      if (justification.empty()) {
        pragma.malformed = true;
        pragma.error =
            "detlint:allow pragma without a justification — say *why* the "
            "suppressed construct cannot affect simulation order";
      }
    }
    out.push_back(std::move(pragma));
    searchFrom = close;
  }
}

/// Strips comments, string literals (including raw strings), char literals,
/// and preprocessor directives; returns identifier/punctuation tokens plus
/// the pragmas found in comments.
LexResult lex(std::string_view src) {
  LexResult out;
  int line = 1;
  std::size_t i = 0;
  const std::size_t n = src.size();
  auto peek = [&](std::size_t k) { return i + k < n ? src[i + k] : '\0'; };

  while (i < n) {
    const char c = src[i];
    if (c == '\n') {
      ++line;
      ++i;
      continue;
    }
    // Line comment.
    if (c == '/' && peek(1) == '/') {
      std::size_t end = src.find('\n', i);
      if (end == std::string_view::npos) end = n;
      parsePragmas(src.substr(i, end - i), line, out.pragmas);
      i = end;
      continue;
    }
    // Block comment.
    if (c == '/' && peek(1) == '*') {
      std::size_t end = src.find("*/", i + 2);
      if (end == std::string_view::npos) end = n;
      const std::string_view body = src.substr(i, end - i);
      parsePragmas(body, line, out.pragmas);
      line += static_cast<int>(std::count(body.begin(), body.end(), '\n'));
      i = end == n ? n : end + 2;
      continue;
    }
    // Raw string literal: R"delim( ... )delim".
    if (c == 'R' && peek(1) == '"') {
      std::size_t d = i + 2;
      while (d < n && src[d] != '(') ++d;
      const std::string delim = std::string{src.substr(i + 2, d - (i + 2))};
      const std::string closer = ")" + delim + "\"";
      std::size_t end = src.find(closer, d);
      if (end == std::string_view::npos) end = n;
      const std::string_view body = src.substr(i, end - i);
      line += static_cast<int>(std::count(body.begin(), body.end(), '\n'));
      i = end == n ? n : end + closer.size();
      continue;
    }
    // String literal.
    if (c == '"') {
      ++i;
      while (i < n && src[i] != '"') {
        if (src[i] == '\\') ++i;
        if (i < n && src[i] == '\n') ++line;
        ++i;
      }
      ++i;  // closing quote
      continue;
    }
    // Char literal (distinguished from digit separators by context: we only
    // get here outside identifiers/numbers).
    if (c == '\'') {
      ++i;
      while (i < n && src[i] != '\'') {
        if (src[i] == '\\') ++i;
        ++i;
      }
      ++i;
      continue;
    }
    // Preprocessor directive: skip to end of line (minus continuations), so
    // `#include <ctime>` is not a finding — usage is what gets flagged.
    if (c == '#') {
      while (i < n) {
        if (src[i] == '\\' && peek(1) == '\n') {
          ++line;
          i += 2;
          continue;
        }
        if (src[i] == '\n') break;
        ++i;
      }
      continue;
    }
    // Identifier.
    if (identStart(c)) {
      std::size_t end = i + 1;
      while (end < n && identChar(src[end])) ++end;
      Token t;
      t.text = std::string{src.substr(i, end - i)};
      t.line = line;
      t.ident = true;
      out.tokens.push_back(std::move(t));
      i = end;
      continue;
    }
    // Number: skip (digit separators, exponents, hex).
    if (std::isdigit(static_cast<unsigned char>(c))) {
      std::size_t end = i + 1;
      while (end < n && (identChar(src[end]) || src[end] == '.' ||
                         ((src[end] == '+' || src[end] == '-') &&
                          (src[end - 1] == 'e' || src[end - 1] == 'E' ||
                           src[end - 1] == 'p' || src[end - 1] == 'P')))) {
        ++end;
      }
      i = end;
      continue;
    }
    // Punctuation: kept one char at a time.
    if (!std::isspace(static_cast<unsigned char>(c))) {
      Token t;
      t.text = std::string(1, c);
      t.line = line;
      out.tokens.push_back(std::move(t));
    }
    ++i;
  }
  return out;
}

// ------------------------------------------------------------- rule engine

bool isPunct(const Token& t, char c) {
  return !t.ident && t.text.size() == 1 && t.text[0] == c;
}

/// Wall-clock *type* names: flagged anywhere they appear in code.
bool wallClockType(std::string_view id) {
  return id == "random_device" || id == "system_clock" ||
         id == "steady_clock" || id == "high_resolution_clock" ||
         id == "gettimeofday" || id == "clock_gettime" ||
         id == "timespec_get" || id == "localtime" || id == "gmtime" ||
         id == "mktime" || id == "drand48" || id == "srand48";
}

/// Wall-clock *function* names: flagged only as free or std-qualified calls,
/// so `sim.time(...)`-style members and `Duration::seconds(...)` stay clean.
bool wallClockCall(std::string_view id) {
  return id == "rand" || id == "srand" || id == "time" || id == "clock";
}

bool orderedAssocName(std::string_view id) {
  return id == "map" || id == "multimap" || id == "set" || id == "multiset";
}

bool pointerishKeyIdent(std::string_view id) {
  return id == "uintptr_t" || id == "intptr_t" || id == "shared_ptr" ||
         id == "unique_ptr";
}

/// Mutex-family type names: flagged when std-qualified (a project-local
/// `Foo::mutex` wrapper stays clean, like R3's qualifier idiom).
bool mutexTypeName(std::string_view id) {
  return id == "mutex" || id == "recursive_mutex" || id == "timed_mutex" ||
         id == "shared_mutex" || id == "shared_timed_mutex" ||
         id == "recursive_timed_mutex";
}

/// Host-sleep call names (std::this_thread's scheduler-dependent waits).
bool hostSleepName(std::string_view id) {
  return id == "sleep_for" || id == "sleep_until";
}

struct Analyzer {
  const std::vector<Token>& toks;
  std::string_view filename;
  const Options& opts;
  std::vector<Finding> findings;

  void report(int line, Rule rule, std::string message) {
    Finding f;
    f.file = std::string{filename};
    f.line = line;
    f.rule = rule;
    f.message = std::move(message);
    findings.push_back(std::move(f));
  }

  [[nodiscard]] bool wallClockAllowlisted() const {
    for (const std::string& allowed : opts.wallClockAllowlist) {
      if (filename.find(allowed) != std::string_view::npos) return true;
    }
    return false;
  }

  /// True when toks[i] is reached through `.` or `->` (member access).
  [[nodiscard]] bool memberAccess(std::size_t i) const {
    if (i == 0) return false;
    if (isPunct(toks[i - 1], '.')) return true;
    return i >= 2 && isPunct(toks[i - 1], '>') && isPunct(toks[i - 2], '-');
  }

  /// Identifier qualifying toks[i] via `::`, or empty when unqualified.
  [[nodiscard]] std::string_view qualifier(std::size_t i) const {
    if (i >= 3 && isPunct(toks[i - 1], ':') && isPunct(toks[i - 2], ':') &&
        toks[i - 3].ident) {
      return toks[i - 3].text;
    }
    return {};
  }

  /// Extracts the first template argument after toks[open] == '<' as a token
  /// range [open+1, end); returns false when the template list never closes.
  bool firstTemplateArg(std::size_t open, std::size_t& argEnd) const {
    int depth = 1;
    for (std::size_t j = open + 1; j < toks.size(); ++j) {
      const Token& t = toks[j];
      if (t.ident) continue;
      const char c = t.text[0];
      if (c == '<' || c == '(') ++depth;
      if (c == '>' || c == ')') --depth;
      if (c == ';' || c == '{') return false;  // `a < b` comparison, not a template
      if (depth == 0 || (depth == 1 && c == ',')) {
        argEnd = j;
        return true;
      }
    }
    return false;
  }

  void run() {
    for (std::size_t i = 0; i < toks.size(); ++i) {
      const Token& t = toks[i];
      if (!t.ident) continue;
      const std::string_view id = t.text;

      // R1: unordered containers in sim-visible code.
      if (id == "unordered_map" || id == "unordered_set" ||
          id == "unordered_multimap" || id == "unordered_multiset") {
        report(t.line, Rule::UnorderedIter,
               "std::" + t.text +
                   " in sim-visible code: hash-order iteration is "
                   "nondeterministic; use util::FlatMap64 (forEachOrdered "
                   "for sorted visits), an ordered container, or justify "
                   "with detlint:allow(unordered-iter)");
        checkPointerKey(i);
        continue;
      }

      // R2: ambient time/entropy.
      if (!wallClockAllowlisted()) {
        if (wallClockType(id) && !memberAccess(i)) {
          report(t.line, Rule::WallClock,
                 "'" + t.text +
                     "' samples ambient time/entropy: simulations must use "
                     "Simulator::now() / Simulator::rng() so runs are "
                     "reproducible (detlint:allow(wall-clock) if genuinely "
                     "outside the simulation)");
          continue;
        }
        if (wallClockCall(id) && i + 1 < toks.size() &&
            isPunct(toks[i + 1], '(') && !memberAccess(i)) {
          const std::string_view qual = qualifier(i);
          if (qual.empty() || qual == "std") {
            report(t.line, Rule::WallClock,
                   "call to '" + t.text +
                       "' reads the wall clock / process entropy; use the "
                       "simulation clock and seeded Rng instead");
            continue;
          }
        }
      }

      // R3: pointer-keyed ordered containers (std::map<T*, ...> etc.).
      if (orderedAssocName(id) && qualifier(i) == "std") checkPointerKey(i);

      // R5: host-thread constructs whose observable effects depend on the
      // OS scheduler. One finding per construct: `this_thread` covers its
      // own qualified calls, so `this_thread::sleep_for` reports once.
      if (id == "this_thread") {
        report(t.line, Rule::ThreadOrder,
               "std::this_thread in sim-visible code: host sleeps, yields "
               "and thread ids depend on the OS scheduler; simulated delays "
               "come from Simulator scheduling "
               "(detlint:allow(thread-order) for harness-only code)");
        continue;
      }
      if (hostSleepName(id) && qualifier(i) != "this_thread") {
        report(t.line, Rule::ThreadOrder,
               "'" + t.text +
                   "' sleeps the host thread: wall-time waits are invisible "
                   "to the simulation clock and scheduler-dependent; "
                   "schedule an event instead");
        continue;
      }
      if (mutexTypeName(id) && qualifier(i) == "std") {
        report(t.line, Rule::ThreadOrder,
               "std::" + t.text +
                   " in sim-visible code: lock-acquisition order is an OS "
                   "race, so any iteration or accumulation it orders is "
                   "nondeterministic; structure parallelism as barriers with "
                   "canonical merges (pdes/pdes.hpp) or justify with "
                   "detlint:allow(thread-order)");
        continue;
      }
      if (id == "get_id" && qualifier(i) != "this_thread") {
        report(t.line, Rule::ThreadOrder,
               "thread-id inspection in sim-visible code: branching on "
               "which worker runs is nondeterministic by construction "
               "(detlint:allow(thread-order) if it cannot reach simulation "
               "state)");
        continue;
      }
    }
  }

  /// Inspects the key type of an associative container at toks[i].
  void checkPointerKey(std::size_t i) {
    if (i + 1 >= toks.size() || !isPunct(toks[i + 1], '<')) return;
    std::size_t argEnd = 0;
    if (!firstTemplateArg(i + 1, argEnd)) return;
    for (std::size_t j = i + 2; j < argEnd; ++j) {
      const Token& a = toks[j];
      const bool pointer = !a.ident && a.text[0] == '*';
      if (pointer || (a.ident && pointerishKeyIdent(a.text))) {
        report(toks[i].line, Rule::PointerKey,
               "container keyed on a pointer (" + toks[i].text +
                   "<...>): address order varies run to run, so any "
                   "iteration or ordering over it is nondeterministic; key "
                   "on a stable id (serial, user id) instead");
        return;
      }
    }
  }
};

/// Line numbers that carry at least one code token, sorted ascending.
std::vector<int> codeLines(const std::vector<Token>& toks) {
  std::vector<int> lines;
  for (const Token& t : toks) {
    if (lines.empty() || lines.back() != t.line) lines.push_back(t.line);
  }
  return lines;
}

}  // namespace

const char* ruleName(Rule r) {
  switch (r) {
    case Rule::UnorderedIter: return "unordered-iter";
    case Rule::WallClock: return "wall-clock";
    case Rule::PointerKey: return "pointer-key";
    case Rule::Pragma: return "pragma";
    case Rule::ThreadOrder: return "thread-order";
  }
  return "?";
}

bool ruleFromName(std::string_view name, Rule& out) {
  if (name == "unordered-iter") { out = Rule::UnorderedIter; return true; }
  if (name == "wall-clock") { out = Rule::WallClock; return true; }
  if (name == "pointer-key") { out = Rule::PointerKey; return true; }
  if (name == "thread-order") { out = Rule::ThreadOrder; return true; }
  return false;
}

std::string Finding::key() const {
  return file + ":" + std::to_string(line) + ":" + ruleName(rule);
}

std::vector<Finding> scanSource(std::string_view source,
                                std::string_view filename,
                                const Options& opts) {
  const LexResult lexed = lex(source);
  Analyzer analyzer{lexed.tokens, filename, opts, {}};
  analyzer.run();

  // Pragma hygiene first: malformed pragmas are findings of their own and
  // never suppress anything.
  std::vector<Finding> out;
  for (const Pragma& p : lexed.pragmas) {
    if (!p.malformed) continue;
    Finding f;
    f.file = std::string{filename};
    f.line = p.line;
    f.rule = Rule::Pragma;
    f.message = p.error;
    out.push_back(std::move(f));
  }

  // Suppression: a line pragma covers its own line and the next line that
  // contains code (so a comment block directly above a declaration works);
  // a file pragma covers the whole file for its rules.
  const std::vector<int> lines = codeLines(lexed.tokens);
  auto nextCodeLine = [&lines](int after) {
    const auto it = std::lower_bound(lines.begin(), lines.end(), after);
    return it != lines.end() ? *it : -1;
  };
  auto suppressed = [&](const Finding& f) {
    for (const Pragma& p : lexed.pragmas) {
      if (p.malformed) continue;
      if (std::find(p.rules.begin(), p.rules.end(), f.rule) == p.rules.end()) {
        continue;
      }
      if (p.fileScope) return true;
      if (f.line == p.line || f.line == nextCodeLine(p.line + 1)) return true;
    }
    return false;
  };
  for (Finding& f : analyzer.findings) {
    if (!suppressed(f)) out.push_back(std::move(f));
  }
  std::stable_sort(out.begin(), out.end(), [](const Finding& a, const Finding& b) {
    return a.line < b.line;
  });
  return out;
}

std::vector<Finding> scanTree(const std::string& root,
                              const std::vector<std::string>& paths,
                              const Options& opts) {
  namespace fs = std::filesystem;
  const fs::path rootPath{root};
  std::vector<fs::path> files;
  auto wanted = [](const fs::path& p) {
    const std::string ext = p.extension().string();
    return ext == ".hpp" || ext == ".h" || ext == ".hxx" || ext == ".cpp" ||
           ext == ".cc" || ext == ".cxx";
  };
  for (const std::string& rel : paths) {
    const fs::path base = rootPath / rel;
    std::error_code ec;
    if (fs::is_regular_file(base, ec)) {
      files.push_back(base);
      continue;
    }
    for (fs::recursive_directory_iterator it{base, ec}, end; it != end;
         it.increment(ec)) {
      if (ec) break;
      if (it->is_regular_file(ec) && wanted(it->path())) files.push_back(it->path());
    }
  }
  std::sort(files.begin(), files.end());
  files.erase(std::unique(files.begin(), files.end()), files.end());

  std::vector<Finding> findings;
  for (const fs::path& file : files) {
    std::ifstream in{file, std::ios::binary};
    if (!in) continue;
    std::ostringstream buf;
    buf << in.rdbuf();
    const std::string text = buf.str();
    std::error_code ec;
    fs::path rel = fs::relative(file, rootPath, ec);
    const std::string name = (ec ? file : rel).generic_string();
    auto fileFindings = scanSource(text, name, opts);
    findings.insert(findings.end(),
                    std::make_move_iterator(fileFindings.begin()),
                    std::make_move_iterator(fileFindings.end()));
  }
  return findings;
}

bool Baseline::load(const std::string& path) {
  std::ifstream in{path};
  if (!in) return false;
  std::string line;
  while (std::getline(in, line)) {
    const std::string_view trimmed = trim(line);
    if (trimmed.empty() || trimmed.front() == '#') continue;
    keys_.emplace_back(trimmed);
  }
  std::sort(keys_.begin(), keys_.end());
  keys_.erase(std::unique(keys_.begin(), keys_.end()), keys_.end());
  return true;
}

bool Baseline::covers(const Finding& f) const {
  return std::binary_search(keys_.begin(), keys_.end(), f.key());
}

std::string Baseline::serialize(const std::vector<Finding>& findings) {
  std::vector<std::string> keys;
  keys.reserve(findings.size());
  for (const Finding& f : findings) keys.push_back(f.key());
  std::sort(keys.begin(), keys.end());
  keys.erase(std::unique(keys.begin(), keys.end()), keys.end());
  std::string out =
      "# detlint baseline — tolerated pre-existing findings, burn down over "
      "time.\n# Format: <file>:<line>:<rule>\n";
  for (const std::string& k : keys) {
    out += k;
    out += '\n';
  }
  return out;
}

std::vector<Finding> applyBaseline(std::vector<Finding> findings,
                                   const Baseline& baseline) {
  findings.erase(std::remove_if(findings.begin(), findings.end(),
                                [&](const Finding& f) { return baseline.covers(f); }),
                 findings.end());
  return findings;
}

std::string formatText(const std::vector<Finding>& findings) {
  std::string out;
  for (const Finding& f : findings) {
    out += f.file + ":" + std::to_string(f.line) + ": [" + ruleName(f.rule) +
           "] " + f.message + "\n";
  }
  return out;
}

namespace {
std::string jsonEscape(std::string_view s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}
}  // namespace

std::string formatJson(const std::vector<Finding>& findings) {
  std::string out = "[";
  for (std::size_t i = 0; i < findings.size(); ++i) {
    const Finding& f = findings[i];
    if (i > 0) out += ",";
    out += "\n  {\"file\": \"" + jsonEscape(f.file) +
           "\", \"line\": " + std::to_string(f.line) + ", \"rule\": \"" +
           ruleName(f.rule) + "\", \"message\": \"" + jsonEscape(f.message) +
           "\"}";
  }
  out += findings.empty() ? "]\n" : "\n]\n";
  return out;
}

}  // namespace detlint
