#include "detlint.hpp"

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>
#include <thread>

#include "index.hpp"
#include "lexer.hpp"

namespace detlint {

namespace {

// ------------------------------------------------------------- rule engine

/// Wall-clock *type* names: flagged anywhere they appear in code.
bool wallClockType(std::string_view id) {
  return id == "random_device" || id == "system_clock" ||
         id == "steady_clock" || id == "high_resolution_clock" ||
         id == "gettimeofday" || id == "clock_gettime" ||
         id == "timespec_get" || id == "localtime" || id == "gmtime" ||
         id == "mktime" || id == "drand48" || id == "srand48";
}

/// Wall-clock *function* names: flagged only as free or std-qualified calls,
/// so `sim.time(...)`-style members and `Duration::seconds(...)` stay clean.
bool wallClockCall(std::string_view id) {
  return id == "rand" || id == "srand" || id == "time" || id == "clock";
}

bool orderedAssocName(std::string_view id) {
  return id == "map" || id == "multimap" || id == "set" || id == "multiset";
}

bool unorderedAssocName(std::string_view id) {
  return id == "unordered_map" || id == "unordered_set" ||
         id == "unordered_multimap" || id == "unordered_multiset";
}

bool pointerishKeyIdent(std::string_view id) {
  return id == "uintptr_t" || id == "intptr_t" || id == "shared_ptr" ||
         id == "unique_ptr";
}

/// Mutex-family type names: flagged when std-qualified (a project-local
/// `Foo::mutex` wrapper stays clean, like R3's qualifier idiom).
bool mutexTypeName(std::string_view id) {
  return id == "mutex" || id == "recursive_mutex" || id == "timed_mutex" ||
         id == "shared_mutex" || id == "shared_timed_mutex" ||
         id == "recursive_timed_mutex";
}

/// Host-sleep call names (std::this_thread's scheduler-dependent waits).
bool hostSleepName(std::string_view id) {
  return id == "sleep_for" || id == "sleep_until";
}

/// Container members that invalidate iterators/references of the container
/// they are called on (R8 vocabulary).
bool invalidatingMember(std::string_view id) {
  return id == "erase" || id == "insert" || id == "push_back" ||
         id == "emplace_back" || id == "emplace" || id == "pop_back" ||
         id == "push_front" || id == "pop_front" || id == "clear" ||
         id == "resize";
}

/// One range-for statement: `for (decl : expr) body`.
struct RangeFor {
  int line{1};
  std::size_t exprBegin{0}, exprEnd{0};  // token range of the range expr
  std::size_t bodyBegin{0}, bodyEnd{0};  // token range of the body
};

/// Collects every range-for in the token stream (classic `for (;;)` loops
/// are excluded by their first depth-1 ';').
std::vector<RangeFor> collectRangeFors(const std::vector<Token>& toks) {
  std::vector<RangeFor> out;
  const std::size_t n = toks.size();
  for (std::size_t i = 0; i + 1 < n; ++i) {
    if (!toks[i].ident || toks[i].text != "for" || !isPunct(toks[i + 1], '('))
      continue;
    const std::size_t pastParen = skipBalancedTokens(toks, i + 1, '(', ')');
    if (pastParen == 0) continue;
    const std::size_t closeParen = pastParen - 1;
    // Find the range ':' at paren depth 1 (skipping `::`).
    std::size_t colon = 0;
    int depth = 0;
    for (std::size_t j = i + 1; j < closeParen; ++j) {
      const Token& t = toks[j];
      if (t.ident) continue;
      const char c = t.text[0];
      if (c == '(' || c == '[' || c == '{') ++depth;
      if (c == ')' || c == ']' || c == '}') --depth;
      if (depth != 1) continue;
      if (c == ';') break;  // classic for
      if (c == ':' && !(j > 0 && isPunct(toks[j - 1], ':')) &&
          !(j + 1 < n && isPunct(toks[j + 1], ':'))) {
        colon = j;
        break;
      }
    }
    if (colon == 0) continue;
    RangeFor rf;
    rf.line = toks[i].line;
    rf.exprBegin = colon + 1;
    rf.exprEnd = closeParen;
    if (pastParen < n && isPunct(toks[pastParen], '{')) {
      rf.bodyBegin = pastParen;
      rf.bodyEnd = skipBalancedTokens(toks, pastParen, '{', '}');
    } else {
      // Single-statement body: up to the ';' at depth 0.
      rf.bodyBegin = pastParen;
      int d = 0;
      for (std::size_t j = pastParen; j < n; ++j) {
        const Token& t = toks[j];
        if (t.ident) continue;
        const char c = t.text[0];
        if (c == '(' || c == '[' || c == '{') ++d;
        if (c == ')' || c == ']' || c == '}') --d;
        if (c == ';' && d == 0) {
          rf.bodyEnd = j + 1;
          break;
        }
      }
    }
    if (rf.bodyEnd != 0) out.push_back(rf);
  }
  return out;
}

/// Normalizes a range expression to an `a.b` receiver chain, or empty when
/// the expression is not a plain member chain.
std::string rangeExprChain(const std::vector<Token>& toks, std::size_t begin,
                           std::size_t end) {
  std::string chain;
  bool expectIdent = true;
  for (std::size_t j = begin; j < end; ++j) {
    const Token& t = toks[j];
    if (t.ident) {
      if (!expectIdent) return {};
      if (!chain.empty()) chain += '.';
      chain += t.text;
      expectIdent = false;
      continue;
    }
    const char c = t.text[0];
    if (c == '.' && !expectIdent) {
      expectIdent = true;
      continue;
    }
    if (c == '-' && j + 1 < end && isPunct(toks[j + 1], '>') && !expectIdent) {
      expectIdent = true;
      ++j;
      continue;
    }
    return {};
  }
  if (expectIdent) return {};
  if (chain.rfind("this.", 0) == 0) chain.erase(0, 5);
  return chain;
}

struct Analyzer {
  const LexResult& lexed;
  std::string_view filename;
  const Options& opts;
  std::vector<Finding> findings;

  [[nodiscard]] const std::vector<Token>& toks() const { return lexed.tokens; }

  void report(int line, Rule rule, std::string message) {
    Finding f;
    f.file = std::string{filename};
    f.line = line;
    f.rule = rule;
    f.message = std::move(message);
    findings.push_back(std::move(f));
  }

  [[nodiscard]] bool wallClockAllowlisted() const {
    for (const std::string& allowed : opts.wallClockAllowlist) {
      if (filename.find(allowed) != std::string_view::npos) return true;
    }
    return false;
  }

  /// Extracts the first template argument after toks[open] == '<' as a token
  /// range [open+1, end); returns false when the template list never closes.
  bool firstTemplateArg(std::size_t open, std::size_t& argEnd) const {
    int depth = 1;
    for (std::size_t j = open + 1; j < toks().size(); ++j) {
      const Token& t = toks()[j];
      if (t.ident) continue;
      const char c = t.text[0];
      if (c == '<' || c == '(') ++depth;
      if (c == '>' || c == ')') --depth;
      if (c == ';' || c == '{') return false;  // `a < b` comparison, not a template
      if (depth == 0 || (depth == 1 && c == ',')) {
        argEnd = j;
        return true;
      }
    }
    return false;
  }

  void run() {
    runTokenRules();
    runFloatOrder();
    runIterInvalidate();
  }

  void runTokenRules() {
    const std::vector<Token>& ts = toks();
    for (std::size_t i = 0; i < ts.size(); ++i) {
      const Token& t = ts[i];
      if (!t.ident) continue;
      const std::string_view id = t.text;

      // R1: unordered containers in sim-visible code.
      if (unorderedAssocName(id)) {
        report(t.line, Rule::UnorderedIter,
               "std::" + t.text +
                   " in sim-visible code: hash-order iteration is "
                   "nondeterministic; use util::FlatMap64 (forEachOrdered "
                   "for sorted visits), an ordered container, or justify "
                   "with detlint:allow(unordered-iter)");
        checkPointerKey(i);
        continue;
      }

      // R2: ambient time/entropy.
      if (!wallClockAllowlisted()) {
        if (wallClockType(id) && !memberAccessAt(ts, i)) {
          report(t.line, Rule::WallClock,
                 "'" + t.text +
                     "' samples ambient time/entropy: simulations must use "
                     "Simulator::now() / Simulator::rng() so runs are "
                     "reproducible (detlint:allow(wall-clock) if genuinely "
                     "outside the simulation)");
          continue;
        }
        if (wallClockCall(id) && i + 1 < ts.size() &&
            isPunct(ts[i + 1], '(') && !memberAccessAt(ts, i)) {
          const std::string_view qual = qualifierAt(ts, i);
          if (qual.empty() || qual == "std") {
            report(t.line, Rule::WallClock,
                   "call to '" + t.text +
                       "' reads the wall clock / process entropy; use the "
                       "simulation clock and seeded Rng instead");
            continue;
          }
        }
      }

      // R3: pointer-keyed ordered containers (std::map<T*, ...> etc.).
      if (orderedAssocName(id) && qualifierAt(ts, i) == "std") {
        checkPointerKey(i);
      }

      // R5: host-thread constructs whose observable effects depend on the
      // OS scheduler. One finding per construct: `this_thread` covers its
      // own qualified calls, so `this_thread::sleep_for` reports once.
      if (id == "this_thread") {
        report(t.line, Rule::ThreadOrder,
               "std::this_thread in sim-visible code: host sleeps, yields "
               "and thread ids depend on the OS scheduler; simulated delays "
               "come from Simulator scheduling "
               "(detlint:allow(thread-order) for harness-only code)");
        continue;
      }
      if (hostSleepName(id) && qualifierAt(ts, i) != "this_thread") {
        report(t.line, Rule::ThreadOrder,
               "'" + t.text +
                   "' sleeps the host thread: wall-time waits are invisible "
                   "to the simulation clock and scheduler-dependent; "
                   "schedule an event instead");
        continue;
      }
      if (mutexTypeName(id) && qualifierAt(ts, i) == "std") {
        report(t.line, Rule::ThreadOrder,
               "std::" + t.text +
                   " in sim-visible code: lock-acquisition order is an OS "
                   "race, so any iteration or accumulation it orders is "
                   "nondeterministic; structure parallelism as barriers with "
                   "canonical merges (pdes/pdes.hpp) or justify with "
                   "detlint:allow(thread-order)");
        continue;
      }
      if (id == "get_id" && qualifierAt(ts, i) != "this_thread") {
        report(t.line, Rule::ThreadOrder,
               "thread-id inspection in sim-visible code: branching on "
               "which worker runs is nondeterministic by construction "
               "(detlint:allow(thread-order) if it cannot reach simulation "
               "state)");
        continue;
      }

      // R7 (token forms): order-sensitive reductions delegated to the
      // library/compiler, where visit order is unspecified.
      if ((id == "reduce" || id == "transform_reduce") &&
          qualifierAt(ts, i) == "std" && i + 1 < ts.size() &&
          isPunct(ts[i + 1], '(')) {
        report(t.line, Rule::FloatOrder,
               "std::" + t.text +
                   " reduces in unspecified order: float addition does not "
                   "commute, so the sum is run-dependent; use std::accumulate "
                   "or an explicit loop over a deterministic order");
        continue;
      }
      if (id == "execution" && qualifierAt(ts, i) == "std") {
        report(t.line, Rule::FloatOrder,
               "std::execution policy: parallel/vectorized algorithms "
               "combine elements in scheduler-dependent order — any float "
               "reduction under it is nondeterministic "
               "(detlint:allow(float-order) for integer-only work)");
        continue;
      }
    }

    // R7 (directive forms): pragmas that relax float semantics or introduce
    // reduction reassociation.
    for (const PpDirective& d : lexed.directives) {
      const std::string& text = d.text;
      const bool fastMath = text.find("fast-math") != std::string::npos ||
                            text.find("fast_math") != std::string::npos;
      const bool fpContract = text.find("fp_contract") != std::string::npos ||
                              text.find("FP_CONTRACT") != std::string::npos ||
                              text.find("float_control") != std::string::npos;
      const bool ompReduction = text.find("omp") != std::string::npos &&
                                text.find("reduction") != std::string::npos;
      if (fastMath || fpContract || ompReduction) {
        report(d.line, Rule::FloatOrder,
               "preprocessor directive relaxes float evaluation order (" +
                   std::string{fastMath ? "fast-math"
                               : fpContract ? "fp-contract/float_control"
                                            : "OpenMP reduction"} +
                   "): results become build- or schedule-dependent, which "
                   "breaks bit-identical digests");
      }
    }
  }

  /// R7: float accumulation inside a range-for over an unordered container —
  /// the sum depends on hash order even when each term is deterministic.
  void runFloatOrder() {
    const std::vector<Token>& ts = toks();
    // Names declared as unordered containers, and float/double variables.
    std::vector<std::string_view> unorderedVars;
    std::vector<std::string_view> floatVars;
    for (std::size_t i = 0; i < ts.size(); ++i) {
      const Token& t = ts[i];
      if (!t.ident) continue;
      if (unorderedAssocName(t.text) && i + 1 < ts.size() &&
          isPunct(ts[i + 1], '<')) {
        const std::size_t past = skipAngleTokens(ts, i + 1);
        if (past != 0 && past < ts.size() && ts[past].ident) {
          unorderedVars.push_back(ts[past].text);
        }
      }
      if ((t.text == "double" || t.text == "float") && i + 1 < ts.size() &&
          ts[i + 1].ident) {
        floatVars.push_back(ts[i + 1].text);
      }
    }
    if (unorderedVars.empty() || floatVars.empty()) return;
    auto contains = [](const std::vector<std::string_view>& set,
                      std::string_view name) {
      return std::find(set.begin(), set.end(), name) != set.end();
    };
    for (const RangeFor& rf : collectRangeFors(ts)) {
      bool overUnordered = false;
      for (std::size_t j = rf.exprBegin; j < rf.exprEnd; ++j) {
        if (ts[j].ident && contains(unorderedVars, ts[j].text)) {
          overUnordered = true;
          break;
        }
      }
      if (!overUnordered) continue;
      for (std::size_t j = rf.bodyBegin; j + 2 < rf.bodyEnd; ++j) {
        if (!ts[j].ident || !contains(floatVars, ts[j].text)) continue;
        const bool compound =
            (isPunct(ts[j + 1], '+') || isPunct(ts[j + 1], '-') ||
             isPunct(ts[j + 1], '*')) &&
            isPunct(ts[j + 2], '=');
        if (compound) {
          report(ts[j].line, Rule::FloatOrder,
                 "float accumulation into '" + ts[j].text +
                     "' inside a range-for over an unordered container: the "
                     "reduction order is hash-order, so the sum differs run "
                     "to run; iterate a deterministic order "
                     "(FlatMap64::forEachOrdered) or sort first");
          break;
        }
      }
    }
  }

  /// R8: mutation of a container inside its own range-for.
  void runIterInvalidate() {
    const std::vector<Token>& ts = toks();
    for (const RangeFor& rf : collectRangeFors(ts)) {
      const std::string chain = rangeExprChain(ts, rf.exprBegin, rf.exprEnd);
      if (chain.empty()) continue;
      for (std::size_t j = rf.bodyBegin; j + 1 < rf.bodyEnd; ++j) {
        const Token& t = ts[j];
        if (!t.ident || !invalidatingMember(t.text) ||
            !isPunct(ts[j + 1], '(') || !memberAccessAt(ts, j)) {
          continue;
        }
        if (receiverChainAt(ts, j) != chain) continue;
        report(t.line, Rule::IterInvalidate,
               "'" + chain + "." + t.text +
                   "' inside a range-for over '" + chain +
                   "': mutating a container invalidates the iterators the "
                   "loop is standing on (the FlatMap64::erase class of bug); "
                   "collect first and mutate after the loop");
      }
    }
  }

  /// Inspects the key type of an associative container at toks[i].
  void checkPointerKey(std::size_t i) {
    const std::vector<Token>& ts = toks();
    if (i + 1 >= ts.size() || !isPunct(ts[i + 1], '<')) return;
    std::size_t argEnd = 0;
    if (!firstTemplateArg(i + 1, argEnd)) return;
    for (std::size_t j = i + 2; j < argEnd; ++j) {
      const Token& a = ts[j];
      const bool pointer = !a.ident && a.text[0] == '*';
      if (pointer || (a.ident && pointerishKeyIdent(a.text))) {
        report(ts[i].line, Rule::PointerKey,
               "container keyed on a pointer (" + ts[i].text +
                   "<...>): address order varies run to run, so any "
                   "iteration or ordering over it is nondeterministic; key "
                   "on a stable id (serial, user id) instead");
        return;
      }
    }
  }
};

// ------------------------------------------------------- scan pipeline

/// Everything one file contributes: its local findings (already filtered by
/// its pragmas) plus the pragma/code-line context the cross-file pass needs
/// to filter graph findings identically, and its slice of the index.
struct FileScan {
  std::string file;
  std::vector<Finding> findings;
  std::vector<Pragma> pragmas;
  std::vector<int> codeLines;
  FileIndex index;
};

/// True when a pragma in `fs` suppresses a finding of `rule` at `line`
/// (line pragma covers its own line and the next code line; file pragma
/// covers the whole file).
bool suppressedBy(const FileScan& fs, int line, Rule rule) {
  auto nextCodeLine = [&fs](int after) {
    const auto it =
        std::lower_bound(fs.codeLines.begin(), fs.codeLines.end(), after);
    return it != fs.codeLines.end() ? *it : -1;
  };
  for (const Pragma& p : fs.pragmas) {
    if (p.malformed) continue;
    if (std::find(p.rules.begin(), p.rules.end(), rule) == p.rules.end()) {
      continue;
    }
    if (p.fileScope) return true;
    if (line == p.line || line == nextCodeLine(p.line + 1)) return true;
  }
  return false;
}

FileScan scanOne(const SourceFile& sf, const Options& opts) {
  FileScan fs;
  fs.file = sf.name;
  const LexResult lexed = lex(sf.text);
  fs.pragmas = lexed.pragmas;
  fs.codeLines = codeLines(lexed.tokens);
  fs.index = buildFileIndex(lexed, sf.name);

  Analyzer analyzer{lexed, sf.name, opts, {}};
  analyzer.run();

  // Pragma hygiene first: malformed pragmas and dangling hotpath marks are
  // findings of their own and never suppress anything.
  for (const Pragma& p : lexed.pragmas) {
    if (!p.malformed) continue;
    Finding f;
    f.file = sf.name;
    f.line = p.line;
    f.rule = Rule::Pragma;
    f.message = p.error;
    fs.findings.push_back(std::move(f));
  }
  for (const int line : fs.index.unattachedHotMarks) {
    Finding f;
    f.file = sf.name;
    f.line = line;
    f.rule = Rule::Pragma;
    f.message =
        "detlint:hotpath mark precedes no function definition — it marks "
        "nothing; place it directly above the definition it roots";
    fs.findings.push_back(std::move(f));
  }

  for (Finding& f : analyzer.findings) {
    if (!suppressedBy(fs, f.line, f.rule)) fs.findings.push_back(std::move(f));
  }
  return fs;
}

}  // namespace

const char* ruleName(Rule r) {
  switch (r) {
    case Rule::UnorderedIter: return "unordered-iter";
    case Rule::WallClock: return "wall-clock";
    case Rule::PointerKey: return "pointer-key";
    case Rule::Pragma: return "pragma";
    case Rule::ThreadOrder: return "thread-order";
    case Rule::HotPathAlloc: return "hotpath-alloc";
    case Rule::FloatOrder: return "float-order";
    case Rule::IterInvalidate: return "iter-invalidate";
  }
  return "?";
}

bool ruleFromName(std::string_view name, Rule& out) {
  if (name == "unordered-iter") { out = Rule::UnorderedIter; return true; }
  if (name == "wall-clock") { out = Rule::WallClock; return true; }
  if (name == "pointer-key") { out = Rule::PointerKey; return true; }
  if (name == "thread-order") { out = Rule::ThreadOrder; return true; }
  if (name == "hotpath-alloc") { out = Rule::HotPathAlloc; return true; }
  if (name == "float-order") { out = Rule::FloatOrder; return true; }
  if (name == "iter-invalidate") { out = Rule::IterInvalidate; return true; }
  return false;
}

std::string Finding::key() const {
  return file + ":" + std::to_string(line) + ":" + ruleName(rule);
}

std::vector<Finding> scanSources(const std::vector<SourceFile>& files,
                                 const Options& opts) {
  // Phase 1 — per-file lexing, indexing, and local rules. Embarrassingly
  // parallel: workers pull file indices from an atomic cursor into
  // pre-sized slots, so no locks are needed (this tool scans its own source
  // under R5) and the merge below is byte-identical for any job count.
  std::vector<FileScan> scans(files.size());
  unsigned jobs = opts.jobs == 0 ? std::thread::hardware_concurrency() : opts.jobs;
  if (jobs == 0) jobs = 1;
  jobs = static_cast<unsigned>(
      std::min<std::size_t>(jobs, std::max<std::size_t>(files.size(), 1)));
  std::atomic<std::size_t> cursor{0};
  auto work = [&] {
    for (std::size_t k; (k = cursor.fetch_add(1)) < files.size();) {
      scans[k] = scanOne(files[k], opts);
    }
  };
  if (jobs <= 1) {
    work();
  } else {
    std::vector<std::thread> pool;
    pool.reserve(jobs - 1);
    for (unsigned w = 1; w < jobs; ++w) pool.emplace_back(work);
    work();
    for (std::thread& th : pool) th.join();
  }

  // Phase 2 — cross-file R6 walk over the combined index (single-threaded:
  // the graph is global and the walk is cheap next to lexing).
  std::vector<FileIndex> indexes;
  indexes.reserve(scans.size());
  for (FileScan& fs : scans) indexes.push_back(std::move(fs.index));
  std::set<std::string> seenKeys;
  for (const HotPathAlloc& hit : walkHotPaths(indexes)) {
    FileScan& owner = scans[hit.fileIdx];
    if (suppressedBy(owner, hit.line, Rule::HotPathAlloc)) continue;
    Finding f;
    f.file = owner.file;
    f.line = hit.line;
    f.rule = Rule::HotPathAlloc;
    f.message = hit.what + " on the allocation-free hot path rooted at '" +
                hit.root + "' (" + hit.rootFile + ":" +
                std::to_string(hit.rootLine) + "), via " + hit.path +
                "; make it warm-up/amortized and justify with "
                "detlint:allow(hotpath-alloc), or move it off the steady "
                "path";
    if (!seenKeys.insert(f.key()).second) continue;
    owner.findings.push_back(std::move(f));
  }

  std::vector<Finding> out;
  for (FileScan& fs : scans) {
    std::stable_sort(
        fs.findings.begin(), fs.findings.end(),
        [](const Finding& a, const Finding& b) { return a.line < b.line; });
    out.insert(out.end(), std::make_move_iterator(fs.findings.begin()),
               std::make_move_iterator(fs.findings.end()));
  }
  return out;
}

std::vector<Finding> scanSource(std::string_view source,
                                std::string_view filename,
                                const Options& opts) {
  Options serial = opts;
  serial.jobs = 1;
  return scanSources(
      {SourceFile{std::string{filename}, std::string{source}}}, serial);
}

std::vector<Finding> scanTree(const std::string& root,
                              const std::vector<std::string>& paths,
                              const Options& opts) {
  namespace fs = std::filesystem;
  const fs::path rootPath{root};
  std::vector<fs::path> files;
  auto wanted = [](const fs::path& p) {
    const std::string ext = p.extension().string();
    return ext == ".hpp" || ext == ".h" || ext == ".hxx" || ext == ".cpp" ||
           ext == ".cc" || ext == ".cxx";
  };
  for (const std::string& rel : paths) {
    const fs::path base = rootPath / rel;
    std::error_code ec;
    if (fs::is_regular_file(base, ec)) {
      files.push_back(base);
      continue;
    }
    for (fs::recursive_directory_iterator it{base, ec}, end; it != end;
         it.increment(ec)) {
      if (ec) break;
      if (it->is_regular_file(ec) && wanted(it->path())) files.push_back(it->path());
    }
  }
  std::sort(files.begin(), files.end());
  files.erase(std::unique(files.begin(), files.end()), files.end());

  std::vector<SourceFile> sources;
  sources.reserve(files.size());
  for (const fs::path& file : files) {
    std::ifstream in{file, std::ios::binary};
    if (!in) continue;
    std::ostringstream buf;
    buf << in.rdbuf();
    std::error_code ec;
    fs::path rel = fs::relative(file, rootPath, ec);
    SourceFile sf;
    sf.name = (ec ? file : rel).generic_string();
    sf.text = buf.str();
    sources.push_back(std::move(sf));
  }
  return scanSources(sources, opts);
}

bool Baseline::load(const std::string& path) {
  std::ifstream in{path};
  if (!in) return false;
  std::string line;
  while (std::getline(in, line)) {
    const std::string_view trimmed = trimView(line);
    if (trimmed.empty() || trimmed.front() == '#') continue;
    keys_.emplace_back(trimmed);
  }
  std::sort(keys_.begin(), keys_.end());
  keys_.erase(std::unique(keys_.begin(), keys_.end()), keys_.end());
  return true;
}

bool Baseline::covers(const Finding& f) const {
  return std::binary_search(keys_.begin(), keys_.end(), f.key());
}

std::vector<std::string> Baseline::staleKeys(
    const std::vector<Finding>& findings) const {
  std::vector<std::string> live;
  live.reserve(findings.size());
  for (const Finding& f : findings) live.push_back(f.key());
  std::sort(live.begin(), live.end());
  std::vector<std::string> stale;
  for (const std::string& k : keys_) {
    if (!std::binary_search(live.begin(), live.end(), k)) stale.push_back(k);
  }
  return stale;
}

namespace {
const char* kBaselineHeader =
    "# detlint baseline — tolerated pre-existing findings, burn down over "
    "time.\n# Format: <file>:<line>:<rule>\n";
}  // namespace

std::string Baseline::serialize(const std::vector<Finding>& findings) {
  std::vector<std::string> keys;
  keys.reserve(findings.size());
  for (const Finding& f : findings) keys.push_back(f.key());
  return serializeKeys(std::move(keys));
}

std::string Baseline::serializeKeys(std::vector<std::string> keys) {
  std::sort(keys.begin(), keys.end());
  keys.erase(std::unique(keys.begin(), keys.end()), keys.end());
  std::string out = kBaselineHeader;
  for (const std::string& k : keys) {
    out += k;
    out += '\n';
  }
  return out;
}

std::vector<Finding> applyBaseline(std::vector<Finding> findings,
                                   const Baseline& baseline) {
  findings.erase(std::remove_if(findings.begin(), findings.end(),
                                [&](const Finding& f) { return baseline.covers(f); }),
                 findings.end());
  return findings;
}

std::string formatText(const std::vector<Finding>& findings) {
  std::string out;
  for (const Finding& f : findings) {
    out += f.file + ":" + std::to_string(f.line) + ": [" + ruleName(f.rule) +
           "] " + f.message + "\n";
  }
  return out;
}

namespace {
std::string jsonEscape(std::string_view s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

struct RuleMeta {
  Rule rule;
  const char* shortDesc;
};

constexpr RuleMeta kRuleMeta[] = {
    {Rule::UnorderedIter,
     "Unordered container in sim-visible code (hash-order iteration)"},
    {Rule::WallClock, "Ambient wall clock or process entropy"},
    {Rule::PointerKey, "Container keyed on a pointer (address order)"},
    {Rule::Pragma, "detlint annotation hygiene"},
    {Rule::ThreadOrder, "OS-scheduler-dependent construct"},
    {Rule::HotPathAlloc,
     "Allocation-prone construct reachable from a detlint:hotpath root"},
    {Rule::FloatOrder, "Order-nondeterministic float reduction"},
    {Rule::IterInvalidate, "Container mutated inside its own range-for"},
};
}  // namespace

std::string formatSarif(const std::vector<Finding>& findings) {
  std::string out;
  out += "{\n";
  out += "  \"$schema\": \"https://json.schemastore.org/sarif-2.1.0.json\",\n";
  out += "  \"version\": \"2.1.0\",\n";
  out += "  \"runs\": [{\n";
  out += "    \"tool\": {\"driver\": {\"name\": \"detlint\",\n";
  out += "      \"informationUri\": \"tools/detlint/detlint.hpp\",\n";
  out += "      \"rules\": [\n";
  for (std::size_t i = 0; i < std::size(kRuleMeta); ++i) {
    out += std::string{"        {\"id\": \""} + ruleName(kRuleMeta[i].rule) +
           "\", \"shortDescription\": {\"text\": \"" +
           jsonEscape(kRuleMeta[i].shortDesc) + "\"}}";
    out += i + 1 < std::size(kRuleMeta) ? ",\n" : "\n";
  }
  out += "      ]\n    }},\n";
  out += "    \"results\": [\n";
  for (std::size_t i = 0; i < findings.size(); ++i) {
    const Finding& f = findings[i];
    std::size_t ruleIndex = 0;
    for (std::size_t r = 0; r < std::size(kRuleMeta); ++r) {
      if (kRuleMeta[r].rule == f.rule) ruleIndex = r;
    }
    out += "      {\"ruleId\": \"" + std::string{ruleName(f.rule)} +
           "\", \"ruleIndex\": " + std::to_string(ruleIndex) +
           ", \"level\": \"error\",\n";
    out += "       \"message\": {\"text\": \"" + jsonEscape(f.message) + "\"},\n";
    out += "       \"locations\": [{\"physicalLocation\": {";
    out += "\"artifactLocation\": {\"uri\": \"" + jsonEscape(f.file) + "\"}, ";
    out += "\"region\": {\"startLine\": " + std::to_string(f.line) + "}}}]}";
    out += i + 1 < findings.size() ? ",\n" : "\n";
  }
  out += "    ]\n  }]\n}\n";
  return out;
}

std::string formatJson(const std::vector<Finding>& findings) {
  std::string out = "[";
  for (std::size_t i = 0; i < findings.size(); ++i) {
    const Finding& f = findings[i];
    if (i > 0) out += ",";
    out += "\n  {\"file\": \"" + jsonEscape(f.file) +
           "\", \"line\": " + std::to_string(f.line) + ", \"rule\": \"" +
           ruleName(f.rule) + "\", \"message\": \"" + jsonEscape(f.message) +
           "\"}";
  }
  out += findings.empty() ? "]\n" : "\n]\n";
  return out;
}

}  // namespace detlint
