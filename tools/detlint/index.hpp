#pragma once

// detlint cross-file index.
//
// A lexer-grade model of the scanned tree: per file, the function
// *definitions* (name, qualifier, body token range), the call sites inside
// each body (free, qualified, and method calls), and the allocation-prone
// constructs R6 cares about. Across files, an include graph resolves which
// definitions a call site can legally reach: a call resolves to a definition
// when it lives in the same file, in the caller's transitive include
// closure, or in a .cpp paired (by stem) with a header in that closure —
// so a test helper named like a simulator method never pollutes a src walk.
//
// Everything here is deliberately over-approximate in the safe direction
// for R6 (more edges → more reachable allocations → findings that a human
// then fixes or justifies), and name-resolution is filtered just enough
// that the over-approximation stays reviewable.

#include <cstddef>
#include <string>
#include <string_view>
#include <vector>

#include "lexer.hpp"

namespace detlint {

/// One call site inside a function body. Method calls record the callee
/// name (`push_back` in `v.push_back(x)`) plus the receiver chain.
struct CallSite {
  std::string name;
  std::string qualifier;  // `Simulator` in `Simulator::now()`, else empty
  std::string receiver;   // normalized `a.b` chain for member calls
  bool member{false};
  int line{1};
};

/// One allocation-prone construct inside a function body (R6 vocabulary).
struct AllocSite {
  int line{1};
  std::string what;  // human description, embedded in the finding message
};

/// One function definition (a body was seen; declarations are not indexed).
struct FunctionDef {
  std::string name;
  std::string qualifier;  // `InterestGrid` in `InterestGrid::insert(...)`
  int line{1};            // line of the name token
  bool hot{false};        // R6 root (detlint:hotpath mark or MSIM_HOT)
  std::string hotWhy;
  std::vector<CallSite> calls;
  std::vector<AllocSite> allocs;
  std::size_t bodyBegin{0};  // token index of the body '{'
  std::size_t bodyEnd{0};    // token index one past the matching '}'

  [[nodiscard]] std::string display() const {
    return qualifier.empty() ? name : qualifier + "::" + name;
  }
};

/// The index of one file.
struct FileIndex {
  std::string file;
  std::vector<FunctionDef> defs;
  std::vector<Include> includes;
  /// Lines of `detlint:hotpath` marks that precede no function definition —
  /// annotation typos must not silently mark nothing (reported via R4).
  std::vector<int> unattachedHotMarks;
};

/// Builds the index for one already-lexed file.
[[nodiscard]] FileIndex buildFileIndex(const LexResult& lexed,
                                       std::string_view filename);

/// Convenience for tests: lex + index one source text.
[[nodiscard]] FileIndex indexSource(std::string_view source,
                                    std::string_view filename);

/// One R6 result: an allocation-prone construct reachable from a hot root.
struct HotPathAlloc {
  std::size_t fileIdx{0};  // file owning the construct (index into input)
  int line{1};
  std::string what;
  std::string root;       // display name of the `detlint:hotpath` root
  std::string rootFile;
  int rootLine{1};
  std::string path;       // "root -> a -> b" call chain, for the message
};

/// Walks the call graph from every hot-marked definition and returns the
/// allocation-prone constructs reachable within the scanned tree, in
/// deterministic order (roots in file/definition order, BFS per root).
[[nodiscard]] std::vector<HotPathAlloc> walkHotPaths(
    const std::vector<FileIndex>& files);

}  // namespace detlint
