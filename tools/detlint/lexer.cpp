#include "lexer.hpp"

#include <algorithm>
#include <cctype>

namespace detlint {

namespace {

bool identStart(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}
bool identChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

/// Parses every `detlint:allow...` marker inside one comment whose text
/// starts at `startLine`. The justification must follow the rule list on the
/// same physical line (continuation lines are free-form prose).
void parsePragmas(std::string_view comment, int startLine,
                  std::vector<Pragma>& out) {
  std::size_t searchFrom = 0;
  for (;;) {
    const std::size_t at = comment.find("detlint:allow", searchFrom);
    if (at == std::string_view::npos) return;
    Pragma pragma;
    pragma.line = startLine + static_cast<int>(std::count(
                                  comment.begin(), comment.begin() + static_cast<std::ptrdiff_t>(at), '\n'));
    std::size_t i = at + std::string_view{"detlint:allow"}.size();
    if (comment.substr(i, 5) == "-file") {
      pragma.fileScope = true;
      i += 5;
    }
    // Prose *mentioning* the pragma ("the detlint:allow marker...") is not a
    // pragma: only the marker immediately followed by '(' is. A real typo
    // here leaves the underlying finding unsuppressed, so it cannot hide.
    if (i >= comment.size() || comment[i] != '(') {
      searchFrom = i;
      continue;
    }
    ++i;  // past '('
    const std::size_t close = comment.find(')', i);
    if (close == std::string_view::npos) {
      pragma.malformed = true;
      pragma.error = "malformed detlint:allow pragma: missing ')'";
      out.push_back(std::move(pragma));
      searchFrom = i;
      continue;
    }
    // Comma-separated rule names. Grammar metacharacters mean this is
    // documentation *about* the pragma (`detlint:allow(<rule>[,...])`), not a
    // pragma — skip it without a finding.
    std::string_view list = comment.substr(i, close - i);
    if (list.find_first_of("<>[]|.") != std::string_view::npos) {
      searchFrom = close;
      continue;
    }
    while (!list.empty()) {
      const std::size_t comma = list.find(',');
      const std::string_view name = trimView(list.substr(0, comma));
      Rule rule;
      if (!ruleFromName(name, rule)) {
        pragma.malformed = true;
        pragma.error = "unknown rule '" + std::string{name} +
                       "' in detlint:allow (expected unordered-iter, "
                       "wall-clock, pointer-key, thread-order, hotpath-alloc, "
                       "float-order, iter-invalidate)";
        break;
      }
      pragma.rules.push_back(rule);
      if (comma == std::string_view::npos) break;
      list.remove_prefix(comma + 1);
    }
    // Justification: the rest of the pragma's physical line.
    if (!pragma.malformed) {
      std::size_t lineEnd = comment.find('\n', close);
      if (lineEnd == std::string_view::npos) lineEnd = comment.size();
      const std::string_view justification =
          trimView(comment.substr(close + 1, lineEnd - close - 1));
      if (justification.empty()) {
        pragma.malformed = true;
        pragma.error =
            "detlint:allow pragma without a justification — say *why* the "
            "suppressed construct cannot affect simulation order";
      }
    }
    out.push_back(std::move(pragma));
    searchFrom = close;
  }
}

/// Parses `detlint:hotpath` marks inside one comment. A mark quoted in
/// prose (preceded by a backtick or quote, as in documentation *about* the
/// marker) is not a mark.
void parseHotMarks(std::string_view comment, int startLine,
                   std::vector<HotMark>& out) {
  static constexpr std::string_view kMark = "detlint:hotpath";
  std::size_t searchFrom = 0;
  for (;;) {
    const std::size_t at = comment.find(kMark, searchFrom);
    if (at == std::string_view::npos) return;
    searchFrom = at + kMark.size();
    if (at > 0 &&
        (comment[at - 1] == '`' || comment[at - 1] == '\'' ||
         comment[at - 1] == '"')) {
      continue;  // documentation, not a mark
    }
    const char next =
        searchFrom < comment.size() ? comment[searchFrom] : '\n';
    if (next != ' ' && next != '\t' && next != '\n' && next != '\r') {
      continue;  // part of a longer word / backticked reference
    }
    HotMark mark;
    mark.line = startLine + static_cast<int>(std::count(
                                comment.begin(),
                                comment.begin() + static_cast<std::ptrdiff_t>(at), '\n'));
    std::size_t lineEnd = comment.find('\n', searchFrom);
    if (lineEnd == std::string_view::npos) lineEnd = comment.size();
    mark.why = std::string{
        trimView(comment.substr(searchFrom, lineEnd - searchFrom))};
    out.push_back(std::move(mark));
  }
}

/// Parses an `#include` target out of one joined directive line; returns
/// false when the directive is not an include.
bool parseInclude(std::string_view directive, Include& out) {
  std::size_t i = 1;  // past '#'
  while (i < directive.size() &&
         std::isspace(static_cast<unsigned char>(directive[i]))) {
    ++i;
  }
  if (directive.substr(i, 7) != "include") return false;
  i += 7;
  while (i < directive.size() &&
         std::isspace(static_cast<unsigned char>(directive[i]))) {
    ++i;
  }
  if (i >= directive.size()) return false;
  const char open = directive[i];
  const char close = open == '<' ? '>' : open == '"' ? '"' : '\0';
  if (close == '\0') return false;
  const std::size_t end = directive.find(close, i + 1);
  if (end == std::string_view::npos) return false;
  out.target = std::string{directive.substr(i + 1, end - i - 1)};
  out.angled = open == '<';
  return true;
}

}  // namespace

bool isPunct(const Token& t, char c) {
  return !t.ident && t.text.size() == 1 && t.text[0] == c;
}

std::string_view trimView(std::string_view s) {
  while (!s.empty() && std::isspace(static_cast<unsigned char>(s.front()))) {
    s.remove_prefix(1);
  }
  while (!s.empty() && std::isspace(static_cast<unsigned char>(s.back()))) {
    s.remove_suffix(1);
  }
  return s;
}

bool memberAccessAt(const std::vector<Token>& toks, std::size_t i) {
  if (i == 0) return false;
  if (isPunct(toks[i - 1], '.')) return true;
  return i >= 2 && isPunct(toks[i - 1], '>') && isPunct(toks[i - 2], '-');
}

std::string_view qualifierAt(const std::vector<Token>& toks, std::size_t i) {
  if (i >= 3 && isPunct(toks[i - 1], ':') && isPunct(toks[i - 2], ':') &&
      toks[i - 3].ident) {
    return toks[i - 3].text;
  }
  return {};
}

std::string receiverChainAt(const std::vector<Token>& toks, std::size_t i) {
  std::vector<std::string_view> parts;
  std::size_t p = i;
  for (;;) {
    if (p >= 2 && isPunct(toks[p - 1], '.')) {
      p -= 2;
    } else if (p >= 3 && isPunct(toks[p - 1], '>') && isPunct(toks[p - 2], '-')) {
      p -= 3;
    } else {
      break;
    }
    if (!toks[p].ident) return {};  // expression receiver
    parts.push_back(toks[p].text);
  }
  std::reverse(parts.begin(), parts.end());
  if (!parts.empty() && parts.front() == "this") parts.erase(parts.begin());
  std::string out;
  for (const std::string_view part : parts) {
    if (!out.empty()) out += '.';
    out += part;
  }
  return out;
}

std::size_t skipBalancedTokens(const std::vector<Token>& toks, std::size_t at,
                               char open, char close) {
  if (at >= toks.size() || !isPunct(toks[at], open)) return 0;
  int depth = 0;
  for (std::size_t j = at; j < toks.size(); ++j) {
    if (isPunct(toks[j], open)) ++depth;
    if (isPunct(toks[j], close) && --depth == 0) return j + 1;
  }
  return 0;
}

std::size_t skipAngleTokens(const std::vector<Token>& toks, std::size_t at) {
  if (at >= toks.size() || !isPunct(toks[at], '<')) return 0;
  int depth = 0;
  const std::size_t limit = std::min(toks.size(), at + 160);
  for (std::size_t j = at; j < limit; ++j) {
    const Token& t = toks[j];
    if (t.ident) continue;
    const char c = t.text[0];
    if (c == '<') ++depth;
    if (c == '>' && --depth == 0) return j + 1;
    if (c == ';' || c == '{' || c == '}') return 0;
  }
  return 0;
}

LexResult lex(std::string_view src) {
  LexResult out;
  int line = 1;
  std::size_t i = 0;
  const std::size_t n = src.size();
  auto peek = [&](std::size_t k) { return i + k < n ? src[i + k] : '\0'; };

  while (i < n) {
    const char c = src[i];
    if (c == '\n') {
      ++line;
      ++i;
      continue;
    }
    // Line comment.
    if (c == '/' && peek(1) == '/') {
      std::size_t end = src.find('\n', i);
      if (end == std::string_view::npos) end = n;
      const std::string_view body = src.substr(i, end - i);
      parsePragmas(body, line, out.pragmas);
      parseHotMarks(body, line, out.hotMarks);
      i = end;
      continue;
    }
    // Block comment.
    if (c == '/' && peek(1) == '*') {
      std::size_t end = src.find("*/", i + 2);
      if (end == std::string_view::npos) end = n;
      const std::string_view body = src.substr(i, end - i);
      parsePragmas(body, line, out.pragmas);
      parseHotMarks(body, line, out.hotMarks);
      line += static_cast<int>(std::count(body.begin(), body.end(), '\n'));
      i = end == n ? n : end + 2;
      continue;
    }
    // Raw string literal: R"delim( ... )delim".
    if (c == 'R' && peek(1) == '"') {
      std::size_t d = i + 2;
      while (d < n && src[d] != '(') ++d;
      const std::string delim = std::string{src.substr(i + 2, d - (i + 2))};
      const std::string closer = ")" + delim + "\"";
      std::size_t end = src.find(closer, d);
      if (end == std::string_view::npos) end = n;
      const std::string_view body = src.substr(i, end - i);
      line += static_cast<int>(std::count(body.begin(), body.end(), '\n'));
      i = end == n ? n : end + closer.size();
      continue;
    }
    // String literal.
    if (c == '"') {
      ++i;
      while (i < n && src[i] != '"') {
        if (src[i] == '\\') ++i;
        if (i < n && src[i] == '\n') ++line;
        ++i;
      }
      ++i;  // closing quote
      continue;
    }
    // Char literal (distinguished from digit separators by context: we only
    // get here outside identifiers/numbers).
    if (c == '\'') {
      ++i;
      while (i < n && src[i] != '\'') {
        if (src[i] == '\\') ++i;
        ++i;
      }
      ++i;
      continue;
    }
    // Preprocessor directive: never tokenized (`#include <ctime>` is not a
    // finding — usage is what gets flagged), but the joined text is kept so
    // the indexer sees includes and R7 sees float-semantics pragmas.
    if (c == '#') {
      PpDirective directive;
      directive.line = line;
      while (i < n) {
        if (src[i] == '\\' && peek(1) == '\n') {
          directive.text += ' ';
          ++line;
          i += 2;
          continue;
        }
        if (src[i] == '\n') break;
        directive.text += src[i];
        ++i;
      }
      Include inc;
      inc.line = directive.line;
      if (parseInclude(directive.text, inc)) out.includes.push_back(std::move(inc));
      out.directives.push_back(std::move(directive));
      continue;
    }
    // Identifier.
    if (identStart(c)) {
      std::size_t end = i + 1;
      while (end < n && identChar(src[end])) ++end;
      Token t;
      t.text = std::string{src.substr(i, end - i)};
      t.line = line;
      t.ident = true;
      out.tokens.push_back(std::move(t));
      i = end;
      continue;
    }
    // Number: skip (digit separators, exponents, hex).
    if (std::isdigit(static_cast<unsigned char>(c))) {
      std::size_t end = i + 1;
      while (end < n && (identChar(src[end]) || src[end] == '.' ||
                         ((src[end] == '+' || src[end] == '-') &&
                          (src[end - 1] == 'e' || src[end - 1] == 'E' ||
                           src[end - 1] == 'p' || src[end - 1] == 'P')))) {
        ++end;
      }
      i = end;
      continue;
    }
    // Punctuation: kept one char at a time.
    if (!std::isspace(static_cast<unsigned char>(c))) {
      Token t;
      t.text = std::string(1, c);
      t.line = line;
      out.tokens.push_back(std::move(t));
    }
    ++i;
  }
  return out;
}

std::vector<int> codeLines(const std::vector<Token>& toks) {
  std::vector<int> lines;
  for (const Token& t : toks) {
    if (lines.empty() || lines.back() != t.line) lines.push_back(t.line);
  }
  return lines;
}

}  // namespace detlint
