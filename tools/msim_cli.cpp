// msim — command-line front end to the measurement library.
//
//   msim platforms                          list the modelled platforms
//   msim throughput <platform> [seeds]      Table-3-style two-user cell
//   msim sweep <platform> <users> [seeds]   Fig-7/8-style point
//   msim latency <platform> [users]         Table-4-style breakdown
//   msim viewport                           §6.1 viewport-width detection
//   msim disrupt <downlink|uplink|tcponly>  §8 Worlds disruption run
//   msim survey <platform> [region]         §4 infrastructure probe
//   msim trace <platform> <seconds>         AP capture, tcpdump-style
//   msim script <platform> <file>           play an AutoDriver script (u1)
//
// A global `--threads N` option (anywhere on the command line) caps the
// seed-sweep worker pool; the default comes from MSIM_THREADS or the
// hardware concurrency. Results are identical for any thread count.
//
// Everything prints to stdout; exit code 0 on success, 2 on usage errors.

#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <iostream>
#include <algorithm>

#include <cstdlib>
#include <vector>

#include "core/autodriver.hpp"
#include "core/experiments.hpp"
#include "core/seedsweep.hpp"
#include "util/table.hpp"
#include "geo/tools.hpp"

using namespace msim;

namespace {

PlatformSpec platformByName(const std::string& raw, bool& ok) {
  std::string name = raw;
  for (char& c : name) c = static_cast<char>(std::tolower(c));
  name.erase(std::remove(name.begin(), name.end(), ' '), name.end());
  ok = true;
  if (name == "altspacevr" || name == "altspace") return platforms::altspaceVR();
  if (name == "hubs") return platforms::hubs();
  if (name == "hubsprivate" || name == "hubs*") return platforms::hubsPrivate();
  if (name == "recroom") return platforms::recRoom();
  if (name == "vrchat") return platforms::vrchat();
  if (name == "worlds" || name == "horizonworlds") return platforms::worlds();
  ok = false;
  return platforms::vrchat();
}

int usage() {
  std::fprintf(stderr,
               "usage: msim [--threads N] <command> [args]\n"
               "  platforms | throughput <platform> [seeds] |\n"
               "  sweep <platform> <users> [seeds] | latency <platform> [users] |\n"
               "  viewport | disrupt <downlink|uplink|tcponly> |\n"
               "  survey <platform> [region] | trace <platform> <seconds> |\n"
               "  script <platform> <file>\n");
  return 2;
}

int cmdPlatforms() {
  TablePrinter t{{"name", "company", "since", "data proto", "data placement",
                  "avatar Kbps (payload)"}};
  for (const PlatformSpec& p : platforms::allFive()) {
    t.addRow({p.name, p.features.company, std::to_string(p.features.releaseYear),
              p.data.protocol == DataProtocol::Udp ? "UDP" : "HTTPS-stream",
              toString(p.data.placement),
              fmt(p.avatar.meanUpdateRate().toKbps(), 1)});
  }
  t.print(std::cout);
  return 0;
}

int cmdThroughput(const PlatformSpec& spec, int seeds) {
  const TwoUserThroughputRow row = runTwoUserThroughput(spec, seeds);
  std::printf("%s: up %.1f±%.1f Kbps | down %.1f±%.1f Kbps | avatar %.1f Kbps "
              "| %dx%d\n",
              row.platform.c_str(), row.upKbps, row.upStd, row.downKbps,
              row.downStd, row.avatarKbps, row.resWidth, row.resHeight);
  return 0;
}

int cmdSweep(const PlatformSpec& spec, int users, int seeds) {
  const SweepPoint p = runUsersSweepPoint(spec, users, seeds);
  std::printf("%s @ %d users: down %.3f Mbps | up %.3f Mbps | FPS %.1f | "
              "CPU %.0f%% | GPU %.0f%% | mem %.2f GB\n",
              spec.name.c_str(), users, p.downMbps, p.upMbps, p.fps, p.cpuPct,
              p.gpuPct, p.memGB);
  return 0;
}

int cmdLatency(const PlatformSpec& spec, int users) {
  const LatencyRow r = runLatencyExperiment(spec, users, 15, 3);
  std::printf("%s @ %d users: E2E %.1f±%.1f ms (sender %.1f, server %.1f, "
              "receiver %.1f)\n",
              r.platform.c_str(), users, r.e2eMs, r.e2eStd, r.senderMs,
              r.serverMs, r.receiverMs);
  return 0;
}

int cmdViewport() {
  const ViewportDetection v = runViewportDetection(platforms::altspaceVR(), 1);
  std::printf("AltspaceVR server viewport: %.1f deg (per-step Kbps:", v.inferredWidthDeg);
  for (const double k : v.downKbpsPerStep) std::printf(" %.0f", k);
  std::printf(")\n");
  return 0;
}

int cmdDisrupt(const std::string& kind) {
  DisruptionKind k;
  if (kind == "downlink") {
    k = DisruptionKind::DownlinkBandwidth;
  } else if (kind == "uplink") {
    k = DisruptionKind::UplinkBandwidth;
  } else if (kind == "tcponly") {
    k = DisruptionKind::TcpUplinkOnly;
  } else {
    return usage();
  }
  const DisruptionTimeline d = runWorldsDisruption(k, 1);
  std::printf("t(s), udpUpKbps, udpDownKbps, tcpUpKbps, cpu, fps, stale\n");
  for (std::size_t t = 5; t < d.udpUpKbps.size(); t += 5) {
    std::printf("%zu, %.0f, %.0f, %.0f, %.0f, %.0f, %.0f\n", t, d.udpUpKbps[t],
                d.udpDownKbps[t], d.tcpUpKbps[t],
                t < d.cpuPct.size() ? d.cpuPct[t] : 0,
                t < d.fps.size() ? d.fps[t] : 0,
                t < d.staleFps.size() ? d.staleFps[t] : 0);
  }
  if (d.screenFrozeAtEnd) std::printf("# screen froze at %.0f s\n", d.frozeAtSec);
  return 0;
}

int cmdSurvey(const PlatformSpec& spec, const std::string& regionName) {
  Region vantageRegion = regions::usEast();
  for (const Region& r : regions::all()) {
    if (r.name == regionName) vantageRegion = r;
  }
  Testbed bed{1};
  bed.deploy(spec);
  Node& vantage = bed.fabric().attachHost("vantage", vantageRegion,
                                          Ipv4Address(10, 99, 0, 1));
  const WhoisDb whois = addrplan::defaultWhois();
  for (const auto& [label, ep] :
       {std::pair{std::string{"control"},
                  bed.deployment().controlEndpointFor(vantageRegion)},
        std::pair{std::string{"data"},
                  bed.deployment().dataEndpointFor(vantageRegion, 0)}}) {
    PingTool pinger{vantage};
    pinger.ping(ep.addr, 5, [&, label, ep](const PingResult& r) {
      std::printf("%s %s owner=%s geo=%s rtt=%.2f ms (%d/%d)\n", label.c_str(),
                  ep.toString().c_str(), whois.ownerOf(ep.addr).c_str(),
                  whois.geolocate(ep.addr).c_str(),
                  r.reachable() ? r.rttMs.mean() : -1.0, r.received, r.sent);
    });
    bed.sim().runFor(Duration::seconds(5));
  }
  return 0;
}

int cmdTrace(const PlatformSpec& spec, double seconds) {
  Testbed bed{1};
  bed.deploy(spec);
  TestUser& u1 = bed.addUser();
  TestUser& u2 = bed.addUser();
  bed.sim().schedule(TimePoint::epoch(), [&] {
    u1.client->launch();
    u2.client->launch();
    u1.client->joinEvent();
    u2.client->joinEvent();
  });
  bed.sim().runFor(Duration::seconds(seconds));
  std::fputs(u1.capture->exportTraceText().c_str(), stdout);
  return 0;
}

int cmdScript(const PlatformSpec& spec, const std::string& path) {
  std::ifstream in{path};
  if (!in) {
    std::fprintf(stderr, "msim: cannot read script '%s'\n", path.c_str());
    return 2;
  }
  std::stringstream buf;
  buf << in.rdbuf();
  DriverScript script;
  try {
    script = DriverScript::parse(buf.str());
  } catch (const std::exception& e) {
    std::fprintf(stderr, "msim: %s\n", e.what());
    return 2;
  }
  Testbed bed{1};
  bed.deploy(spec);
  TestUser& u1 = bed.addUser();
  TestUser& u2 = bed.addUser();  // a peer so the event isn't empty
  bed.sim().schedule(TimePoint::epoch(), [&] {
    u2.client->launch();
    u2.client->joinEvent();
  });
  AutoDriver driver{bed, u1};
  const TimePoint last = driver.play(script);
  bed.sim().run(last + Duration::seconds(10));
  const MetricsSample m = u1.headset->metrics().averageOver(
      TimePoint::epoch(), bed.sim().now());
  std::printf("script done at t=%.1f s | mean FPS %.1f | CPU %.0f%% | "
              "data down %.1f Kbps | actions performed: %zu\n",
              bed.sim().now().toSeconds(), m.fps, m.cpuUtilPct,
              u1.capture
                  ->meanRate(Channel::DataDown, 0,
                             static_cast<std::size_t>(bed.sim().now().toSeconds()))
                  .toKbps(),
              driver.actionsPerformed().size());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  // Strip the global --threads option before command dispatch; the seed
  // sweep picks the count up through MSIM_THREADS.
  std::vector<std::string> args;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc) {
      setenv("MSIM_THREADS", argv[++i], /*overwrite=*/1);
      continue;
    }
    args.emplace_back(argv[i]);
  }
  std::vector<char*> argvStripped{argv[0]};
  for (std::string& a : args) argvStripped.push_back(a.data());
  argc = static_cast<int>(argvStripped.size());
  argv = argvStripped.data();

  if (argc < 2) return usage();
  const std::string cmd = argv[1];
  if (cmd == "platforms") return cmdPlatforms();
  if (cmd == "viewport") return cmdViewport();
  if (cmd == "disrupt" && argc >= 3) return cmdDisrupt(argv[2]);

  if (argc < 3) return usage();
  bool ok = false;
  const PlatformSpec spec = platformByName(argv[2], ok);
  if (!ok) {
    std::fprintf(stderr, "msim: unknown platform '%s'\n", argv[2]);
    return 2;
  }
  if (cmd == "throughput") {
    return cmdThroughput(spec, argc > 3 ? std::atoi(argv[3]) : 5);
  }
  if (cmd == "sweep" && argc >= 4) {
    return cmdSweep(spec, std::atoi(argv[3]), argc > 4 ? std::atoi(argv[4]) : 3);
  }
  if (cmd == "latency") {
    return cmdLatency(spec, argc > 3 ? std::atoi(argv[3]) : 2);
  }
  if (cmd == "survey") {
    return cmdSurvey(spec, argc > 3 ? argv[3] : "us-east");
  }
  if (cmd == "trace" && argc >= 4) return cmdTrace(spec, std::atof(argv[3]));
  if (cmd == "script" && argc >= 4) return cmdScript(spec, argv[3]);
  return usage();
}
