#!/usr/bin/env sh
# Runs the simulator-substrate micro-benchmarks and writes the machine-
# readable results to BENCH_simcore_perf.json (git-ignored).
#
#   tools/run_simcore_bench.sh [build-dir] [extra google-benchmark args...]
#
# Compare two checkouts with google-benchmark's compare.py, or just diff the
# items_per_second fields. BM_RelayBroadcast also reports
# allocs_per_forward, the steady-state heap budget of the relay hot path.
set -eu

BUILD_DIR="${1:-build}"
[ $# -gt 0 ] && shift

BIN="$BUILD_DIR/bench/bench_simcore_perf"
if [ ! -x "$BIN" ]; then
  echo "error: $BIN not built (cmake --build $BUILD_DIR --target bench_simcore_perf)" >&2
  exit 1
fi

OUT="BENCH_simcore_perf.json"
"$BIN" \
  --benchmark_format=console \
  --benchmark_out="$OUT" \
  --benchmark_out_format=json \
  --benchmark_repetitions="${MSIM_BENCH_REPS:-1}" \
  "$@"
echo "wrote $OUT"
