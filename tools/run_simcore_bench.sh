#!/usr/bin/env sh
# Runs the simulator-substrate micro-benchmarks and writes the machine-
# readable results to BENCH_simcore_perf.json (git-ignored), then smoke-runs
# the cluster planet-scale bench at a small configuration (its exit status
# enforces the zero-loss migration invariant) and a scaled copy of its
# --million mode (digest identity across worker counts, ghost ledger).
#
#   tools/run_simcore_bench.sh [build-dir] [extra google-benchmark args...]
#
# Compare two checkouts with google-benchmark's compare.py, or just diff the
# items_per_second fields. BM_RelayBroadcast reports allocs_per_forward and
# BM_UdpSteadyStatePacketPool reports pool_hit_rate — the steady-state heap
# budgets of the relay and link hot paths. Skip the cluster smoke with
# MSIM_SKIP_CLUSTER_SMOKE=1.
#
# Set MSIM_BENCH_BASELINE=path/to/old.json to diff the fresh results against
# a recorded baseline via tools/bench_diff.py. With MSIM_BENCH_GATE=PCT the
# diff becomes a gate: the script fails when a hot-path row (interest fan-out
# / SoA broadcast, see MSIM_BENCH_ONLY) regresses beyond PCT percent or any
# allocs_per_* counter exceeds MSIM_BENCH_MAX_ALLOC (default 1e-6 — i.e. the
# relay hot path must stay allocation-free).
set -eu

BUILD_DIR="${1:-build}"
[ $# -gt 0 ] && shift

# Refuse non-Release builds: numbers recorded from a Debug / RelWithDebInfo
# tree are not comparable to the committed baseline (the pre-fix baseline
# was once recorded from a Debug build, which made the trajectory
# meaningless). Override with MSIM_ALLOW_NON_RELEASE=1 for local smoke
# runs; the output is then watermarked on stderr instead of refused.
CACHE="$BUILD_DIR/CMakeCache.txt"
BUILD_TYPE=""
[ -f "$CACHE" ] && BUILD_TYPE=$(sed -n 's/^CMAKE_BUILD_TYPE:[^=]*=//p' "$CACHE")
if [ "$BUILD_TYPE" != "Release" ]; then
  if [ "${MSIM_ALLOW_NON_RELEASE:-0}" = "1" ]; then
    echo "warning: $BUILD_DIR is CMAKE_BUILD_TYPE='$BUILD_TYPE', not Release;" >&2
    echo "warning: results are NOT baseline-comparable (MSIM_ALLOW_NON_RELEASE=1)" >&2
  else
    echo "error: $BUILD_DIR is CMAKE_BUILD_TYPE='$BUILD_TYPE', not Release." >&2
    echo "error: benchmark numbers from non-Release builds are meaningless;" >&2
    echo "error: reconfigure with -DCMAKE_BUILD_TYPE=Release, or set" >&2
    echo "error: MSIM_ALLOW_NON_RELEASE=1 to run anyway (results watermarked)." >&2
    exit 1
  fi
fi

BIN="$BUILD_DIR/bench/bench_simcore_perf"
if [ ! -x "$BIN" ]; then
  echo "error: $BIN not built (cmake --build $BUILD_DIR --target bench_simcore_perf)" >&2
  exit 1
fi

OUT="BENCH_simcore_perf.json"
"$BIN" \
  --benchmark_format=console \
  --benchmark_out="$OUT" \
  --benchmark_out_format=json \
  --benchmark_repetitions="${MSIM_BENCH_REPS:-1}" \
  "$@"
echo "wrote $OUT"

if [ -n "${MSIM_BENCH_BASELINE:-}" ]; then
  echo ""
  echo "== bench diff vs $MSIM_BENCH_BASELINE =="
  DIFF_ARGS=""
  [ -n "${MSIM_BENCH_GATE:-}" ] && DIFF_ARGS="--gate $MSIM_BENCH_GATE \
    --max-alloc ${MSIM_BENCH_MAX_ALLOC:-1e-6}"
  # shellcheck disable=SC2086
  python3 "$(dirname "$0")/bench_diff.py" "$MSIM_BENCH_BASELINE" "$OUT" \
    --only "${MSIM_BENCH_ONLY:-BM_InterestGridFanout|BM_RelayBroadcast|BM_SessionChurnSteady}" \
    $DIFF_ARGS
fi

if [ "${MSIM_SKIP_CLUSTER_SMOKE:-0}" = "1" ]; then
  exit 0
fi
CLUSTER_BIN="$BUILD_DIR/bench/bench_cluster_planet_scale"
if [ ! -x "$CLUSTER_BIN" ]; then
  echo "note: $CLUSTER_BIN not built; skipping cluster smoke run" >&2
  exit 0
fi
echo ""
echo "== cluster smoke run (scaled down; full run is the bench's defaults) =="
MSIM_CLUSTER_USERS="${MSIM_CLUSTER_USERS:-400}" \
MSIM_CLUSTER_INSTANCES="${MSIM_CLUSTER_INSTANCES:-8}" \
MSIM_SEEDS="${MSIM_SEEDS:-2}" \
MSIM_MEASURE_S="${MSIM_MEASURE_S:-3}" \
  "$CLUSTER_BIN"

echo ""
echo "== million-mode smoke (scaled down; the real thing is --million at 1M) =="
# A scaled copy of the 1M-user partitioned run: same 64-shard direct-link
# mesh, adaptive windows, AOI lattice and mid-run drain, with the user count
# shrunk so the smoke stays in CI time. Its exit status enforces the digest
# identity across {1,2,8} workers, the zero-loss invariant, and the ghost
# ledger balance. MSIM_MILLION_USERS overrides the smoke population.
MSIM_CLUSTER_USERS="${MSIM_MILLION_USERS:-20000}" \
MSIM_CLUSTER_INSTANCES=64 \
MSIM_MEASURE_S="${MSIM_MEASURE_S:-1}" \
  "$CLUSTER_BIN" --million

CHURN_BIN="$BUILD_DIR/bench/bench_session_churn"
if [ ! -x "$CHURN_BIN" ]; then
  echo "note: $CHURN_BIN not built; skipping session churn smoke run" >&2
  exit 0
fi
echo ""
echo "== session churn smoke run (zero-loss + herd-jitter + digest gates) =="
MSIM_CHURN_SESSIONS="${MSIM_CHURN_SESSIONS:-400}" \
MSIM_SEEDS="${MSIM_SEEDS:-2}" \
  "$CHURN_BIN"
