#!/usr/bin/env python3
"""Diff two google-benchmark JSON files benchmark-by-benchmark.

Usage:
    tools/bench_diff.py OLD.json NEW.json [--format text|md] [--threshold PCT]
                        [--gate PCT] [--only REGEX] [--max-alloc VALUE]

Matches benchmarks by name (repetition aggregates: the ``_mean`` row is
preferred when repetitions > 1, otherwise the raw row). For each benchmark
present in both files it reports real time, the throughput-style counters
(items_per_second / bytes_per_second), and any alloc-budget counters
(allocs_per_*), with the relative change. Rows whose |time delta| exceeds
--threshold (default 5%) are marked so a reader can skim for regressions on
a noisy box.

By default the exit status is always 0: a reporting tool, not a gate. With
--gate PCT it becomes one — exit 1 when any benchmark's time regressed
(got slower) by more than PCT percent. Speedups never gate. Benchmarks
present only in the candidate file are reported as ``NEW`` with their
measured values (so a fresh benchmark's numbers land in the report the run
they first appear, instead of vanishing until a baseline is re-recorded)
but never gate. Benchmarks present only in the *baseline* DO fail a
--gate run: a row that silently vanished is how a perf gate rots — a
rename must re-record the baseline in the same change. --only REGEX restricts the
diff (and any gating) to benchmarks whose name matches the pattern — used
in CI to gate just the hot-path rows. --max-alloc VALUE gates on the
alloc-budget counters themselves: exit 1 when any candidate row's
allocs_per_* counter exceeds VALUE (so the relay's zero-allocation budget
is enforced even when timings are too noisy to gate). The numbers only
mean anything when both files came from Release builds of the same machine
(see tools/run_simcore_bench.sh, which refuses Debug trees).

Only the Python standard library is used.
"""

from __future__ import annotations

import argparse
import json
import re
import sys


TIME_UNIT_NS = {"ns": 1.0, "us": 1e3, "ms": 1e6, "s": 1e9}


def load_rows(path: str) -> dict[str, dict]:
    """Return {base_name: row} preferring _mean aggregates over raw rows."""
    with open(path, "r", encoding="utf-8") as fh:
        doc = json.load(fh)
    rows: dict[str, dict] = {}
    means: dict[str, dict] = {}
    for row in doc.get("benchmarks", []):
        name = row.get("name", "")
        run_type = row.get("run_type", "iteration")
        scale = TIME_UNIT_NS.get(row.get("time_unit", "ns"), 1.0)
        row["real_time_ns"] = row.get("real_time", 0.0) * scale
        if run_type == "aggregate":
            if row.get("aggregate_name") == "mean":
                means[row.get("run_name", name)] = row
            continue
        # Keep the first iteration row per run_name (repetitions repeat it).
        rows.setdefault(row.get("run_name", name), row)
    rows.update(means)
    return rows


def fmt_time(ns: float) -> str:
    for unit, scale in (("s", 1e9), ("ms", 1e6), ("us", 1e3)):
        if ns >= scale:
            return f"{ns / scale:.3g}{unit}"
    return f"{ns:.3g}ns"


def fmt_rate(v: float) -> str:
    for unit, scale in (("G", 1e9), ("M", 1e6), ("k", 1e3)):
        if v >= scale:
            return f"{v / scale:.3g}{unit}/s"
    return f"{v:.3g}/s"


def pct(old: float, new: float) -> float | None:
    if old == 0:
        return None
    return (new - old) / old * 100.0


def fmt_pct(p: float | None) -> str:
    if p is None:
        return "n/a"
    return f"{p:+.1f}%"


COUNTER_KEYS = ("items_per_second", "bytes_per_second")


def diff_rows(old: dict[str, dict], new: dict[str, dict], threshold: float):
    names = sorted(set(old) | set(new))
    out = []
    for name in names:
        o, n = old.get(name), new.get(name)
        if o is None or n is None:
            entry = {"name": name, "only_in": "new" if o is None else "old"}
            row = n if o is None else o
            entry["time_ns"] = row.get("real_time_ns", 0.0)
            for key in COUNTER_KEYS:
                if key in row:
                    entry["rate_key"] = key
                    entry["rate"] = row[key]
                    break
            allocs = sorted(k for k in row if k.startswith("allocs_per_"))
            if allocs:
                entry["alloc"] = row[allocs[0]]
                if o is None:
                    entry["new_allocs"] = {k: row[k] for k in allocs}
            out.append(entry)
            continue
        entry = {
            "name": name,
            "old_time_ns": o.get("real_time_ns", 0.0),
            "new_time_ns": n.get("real_time_ns", 0.0),
        }
        entry["time_pct"] = pct(entry["old_time_ns"], entry["new_time_ns"])
        entry["flag"] = (entry["time_pct"] is not None
                         and abs(entry["time_pct"]) >= threshold)
        for key in COUNTER_KEYS:
            if key in o and key in n:
                entry["rate_key"] = key
                entry["old_rate"] = o[key]
                entry["new_rate"] = n[key]
                entry["rate_pct"] = pct(o[key], n[key])
                break
        allocs = sorted(k for k in n if k.startswith("allocs_per_"))
        if allocs:
            entry["alloc_key"] = allocs[0]
            entry["old_alloc"] = o.get(allocs[0])
            entry["new_alloc"] = n.get(allocs[0])
            entry["new_allocs"] = {k: n[k] for k in allocs}
        out.append(entry)
    return out


def render(entries, fmt: str, threshold: float) -> str:
    header = ["benchmark", "old time", "new time", "Δtime",
              "old rate", "new rate", "Δrate", "allocs"]
    table = []
    for e in entries:
        if "only_in" in e:
            time_s = fmt_time(e.get("time_ns", 0.0))
            rate_s = fmt_rate(e["rate"]) if "rate" in e else ""
            alloc_s = f"{e['alloc']:.3g}" if "alloc" in e else ""
            if e["only_in"] == "new":
                # A benchmark seen for the first time: report its values in
                # the "new" columns so the numbers are on record immediately.
                table.append([e["name"], "", time_s, "NEW",
                              "", rate_s, "", alloc_s])
            else:
                table.append([e["name"], time_s, "", "VANISHED",
                              rate_s, "", "", alloc_s])
            continue
        mark = " !" if e["flag"] else ""
        alloc = ""
        if "alloc_key" in e and e["new_alloc"] is not None:
            alloc = f"{e['new_alloc']:.3g}"
            if e.get("old_alloc") is not None:
                alloc = f"{e['old_alloc']:.3g} -> {alloc}"
        table.append([
            e["name"],
            fmt_time(e["old_time_ns"]),
            fmt_time(e["new_time_ns"]),
            fmt_pct(e["time_pct"]) + mark,
            fmt_rate(e["old_rate"]) if "old_rate" in e else "",
            fmt_rate(e["new_rate"]) if "new_rate" in e else "",
            fmt_pct(e.get("rate_pct")) if "rate_pct" in e else "",
            alloc,
        ])
    lines = []
    if fmt == "md":
        lines.append("| " + " | ".join(header) + " |")
        lines.append("|" + "|".join("---" for _ in header) + "|")
        for row in table:
            lines.append("| " + " | ".join(row) + " |")
    else:
        widths = [max(len(header[i]), *(len(r[i]) for r in table))
                  if table else len(header[i]) for i in range(len(header))]
        lines.append("  ".join(h.ljust(w) for h, w in zip(header, widths)))
        lines.append("  ".join("-" * w for w in widths))
        for row in table:
            lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    lines.append("")
    lines.append(f"'!' marks |time delta| >= {threshold:g}% "
                 "(negative time delta = faster)")
    return "\n".join(lines)


def main(argv: list[str]) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("old", help="baseline benchmark JSON")
    ap.add_argument("new", help="candidate benchmark JSON")
    ap.add_argument("--format", choices=("text", "md"), default="text")
    ap.add_argument("--threshold", type=float, default=5.0,
                    help="flag rows whose |time delta %%| exceeds this")
    ap.add_argument("--gate", type=float, default=None, metavar="PCT",
                    help="exit 1 when any time regression exceeds PCT%%")
    ap.add_argument("--only", default=None, metavar="REGEX",
                    help="restrict the diff (and gating) to benchmarks "
                         "whose name matches this pattern")
    ap.add_argument("--max-alloc", type=float, default=None, metavar="VALUE",
                    help="exit 1 when any allocs_per_* counter in the new "
                         "file exceeds VALUE")
    args = ap.parse_args(argv)
    entries = diff_rows(load_rows(args.old), load_rows(args.new),
                        args.threshold)
    if args.only is not None:
        pattern = re.compile(args.only)
        entries = [e for e in entries if pattern.search(e["name"])]
    if not entries:
        print("no benchmarks found in either file", file=sys.stderr)
        return 0
    print(render(entries, args.format, args.threshold))
    failed = False
    if args.max_alloc is not None:
        over = [(e["name"], key, value)
                for e in entries
                for key, value in e.get("new_allocs", {}).items()
                if value > args.max_alloc]
        if over:
            failed = True
            print(f"\nALLOC GATE FAILED: {len(over)} counter(s) above "
                  f"{args.max_alloc:g}:", file=sys.stderr)
            for name, key, value in over:
                print(f"  {name}: {key} = {value:g}", file=sys.stderr)
        else:
            print(f"\nalloc gate ok: all allocs_per_* counters <= "
                  f"{args.max_alloc:g}")
    if args.gate is not None:
        regressed = [e for e in entries
                     if e.get("time_pct") is not None
                     and e["time_pct"] > args.gate]
        vanished = [e for e in entries if e.get("only_in") == "old"]
        if regressed:
            failed = True
            print(f"\nGATE FAILED: {len(regressed)} benchmark(s) regressed "
                  f"beyond +{args.gate:g}%:", file=sys.stderr)
            for e in regressed:
                print(f"  {e['name']}: {fmt_pct(e['time_pct'])}",
                      file=sys.stderr)
        if vanished:
            # A baseline row with no candidate counterpart means the gate
            # quietly stopped covering it — fail so renames re-record the
            # baseline in the same change.
            failed = True
            print(f"\nGATE FAILED: {len(vanished)} baseline benchmark(s) "
                  "missing from the candidate file:", file=sys.stderr)
            for e in vanished:
                print(f"  {e['name']}", file=sys.stderr)
        if not regressed and not vanished:
            print(f"\ngate ok: no time regression beyond +{args.gate:g}% "
                  "and no vanished baseline rows")
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
