# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/util_test[1]_include.cmake")
include("/root/repo/build/tests/sim_test[1]_include.cmake")
include("/root/repo/build/tests/net_test[1]_include.cmake")
include("/root/repo/build/tests/transport_test[1]_include.cmake")
include("/root/repo/build/tests/geo_test[1]_include.cmake")
include("/root/repo/build/tests/avatar_test[1]_include.cmake")
include("/root/repo/build/tests/client_test[1]_include.cmake")
include("/root/repo/build/tests/platform_test[1]_include.cmake")
include("/root/repo/build/tests/core_test[1]_include.cmake")
include("/root/repo/build/tests/autodriver_test[1]_include.cmake")
include("/root/repo/build/tests/transport_edge_test[1]_include.cmake")
include("/root/repo/build/tests/paper_claims_test[1]_include.cmake")
include("/root/repo/build/tests/misc_test[1]_include.cmake")
include("/root/repo/build/tests/capacity_test[1]_include.cmake")
include("/root/repo/build/tests/property_test[1]_include.cmake")
include("/root/repo/build/tests/toolchain_edge_test[1]_include.cmake")
include("/root/repo/build/tests/tls_server_test[1]_include.cmake")
