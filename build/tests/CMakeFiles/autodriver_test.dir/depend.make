# Empty dependencies file for autodriver_test.
# This may be replaced when dependencies are built.
