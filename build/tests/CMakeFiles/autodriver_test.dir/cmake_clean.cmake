file(REMOVE_RECURSE
  "CMakeFiles/autodriver_test.dir/autodriver_test.cpp.o"
  "CMakeFiles/autodriver_test.dir/autodriver_test.cpp.o.d"
  "autodriver_test"
  "autodriver_test.pdb"
  "autodriver_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/autodriver_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
