# Empty dependencies file for tls_server_test.
# This may be replaced when dependencies are built.
