file(REMOVE_RECURSE
  "CMakeFiles/tls_server_test.dir/tls_server_test.cpp.o"
  "CMakeFiles/tls_server_test.dir/tls_server_test.cpp.o.d"
  "tls_server_test"
  "tls_server_test.pdb"
  "tls_server_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tls_server_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
