file(REMOVE_RECURSE
  "CMakeFiles/toolchain_edge_test.dir/toolchain_edge_test.cpp.o"
  "CMakeFiles/toolchain_edge_test.dir/toolchain_edge_test.cpp.o.d"
  "toolchain_edge_test"
  "toolchain_edge_test.pdb"
  "toolchain_edge_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/toolchain_edge_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
