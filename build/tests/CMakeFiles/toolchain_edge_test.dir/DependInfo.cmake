
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/toolchain_edge_test.cpp" "tests/CMakeFiles/toolchain_edge_test.dir/toolchain_edge_test.cpp.o" "gcc" "tests/CMakeFiles/toolchain_edge_test.dir/toolchain_edge_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/msim_core.dir/DependInfo.cmake"
  "/root/repo/build/src/platform/CMakeFiles/msim_platform.dir/DependInfo.cmake"
  "/root/repo/build/src/avatar/CMakeFiles/msim_avatar.dir/DependInfo.cmake"
  "/root/repo/build/src/client/CMakeFiles/msim_client.dir/DependInfo.cmake"
  "/root/repo/build/src/geo/CMakeFiles/msim_geo.dir/DependInfo.cmake"
  "/root/repo/build/src/transport/CMakeFiles/msim_transport.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/msim_net.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/msim_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/msim_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
