# Empty compiler generated dependencies file for toolchain_edge_test.
# This may be replaced when dependencies are built.
