# Empty dependencies file for avatar_test.
# This may be replaced when dependencies are built.
