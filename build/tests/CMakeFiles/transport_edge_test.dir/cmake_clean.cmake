file(REMOVE_RECURSE
  "CMakeFiles/transport_edge_test.dir/transport_edge_test.cpp.o"
  "CMakeFiles/transport_edge_test.dir/transport_edge_test.cpp.o.d"
  "transport_edge_test"
  "transport_edge_test.pdb"
  "transport_edge_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/transport_edge_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
