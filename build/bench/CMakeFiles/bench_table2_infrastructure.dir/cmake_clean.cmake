file(REMOVE_RECURSE
  "CMakeFiles/bench_table2_infrastructure.dir/bench_table2_infrastructure.cpp.o"
  "CMakeFiles/bench_table2_infrastructure.dir/bench_table2_infrastructure.cpp.o.d"
  "bench_table2_infrastructure"
  "bench_table2_infrastructure.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_infrastructure.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
