# Empty dependencies file for bench_sec82_latency_loss.
# This may be replaced when dependencies are built.
