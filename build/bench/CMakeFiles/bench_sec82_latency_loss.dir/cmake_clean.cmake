file(REMOVE_RECURSE
  "CMakeFiles/bench_sec82_latency_loss.dir/bench_sec82_latency_loss.cpp.o"
  "CMakeFiles/bench_sec82_latency_loss.dir/bench_sec82_latency_loss.cpp.o.d"
  "bench_sec82_latency_loss"
  "bench_sec82_latency_loss.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sec82_latency_loss.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
