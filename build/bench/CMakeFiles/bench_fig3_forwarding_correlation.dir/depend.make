# Empty dependencies file for bench_fig3_forwarding_correlation.
# This may be replaced when dependencies are built.
