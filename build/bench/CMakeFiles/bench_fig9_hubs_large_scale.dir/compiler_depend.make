# Empty compiler generated dependencies file for bench_fig9_hubs_large_scale.
# This may be replaced when dependencies are built.
