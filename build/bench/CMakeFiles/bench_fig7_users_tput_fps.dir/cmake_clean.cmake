file(REMOVE_RECURSE
  "CMakeFiles/bench_fig7_users_tput_fps.dir/bench_fig7_users_tput_fps.cpp.o"
  "CMakeFiles/bench_fig7_users_tput_fps.dir/bench_fig7_users_tput_fps.cpp.o.d"
  "bench_fig7_users_tput_fps"
  "bench_fig7_users_tput_fps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_users_tput_fps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
