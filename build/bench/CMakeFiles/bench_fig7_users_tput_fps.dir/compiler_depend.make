# Empty compiler generated dependencies file for bench_fig7_users_tput_fps.
# This may be replaced when dependencies are built.
