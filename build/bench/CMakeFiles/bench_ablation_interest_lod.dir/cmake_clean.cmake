file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_interest_lod.dir/bench_ablation_interest_lod.cpp.o"
  "CMakeFiles/bench_ablation_interest_lod.dir/bench_ablation_interest_lod.cpp.o.d"
  "bench_ablation_interest_lod"
  "bench_ablation_interest_lod.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_interest_lod.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
