# Empty dependencies file for bench_ablation_interest_lod.
# This may be replaced when dependencies are built.
