file(REMOVE_RECURSE
  "CMakeFiles/bench_viewport_width.dir/bench_viewport_width.cpp.o"
  "CMakeFiles/bench_viewport_width.dir/bench_viewport_width.cpp.o.d"
  "bench_viewport_width"
  "bench_viewport_width.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_viewport_width.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
