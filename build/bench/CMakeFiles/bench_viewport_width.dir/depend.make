# Empty dependencies file for bench_viewport_width.
# This may be replaced when dependencies are built.
