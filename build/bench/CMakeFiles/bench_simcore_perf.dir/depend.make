# Empty dependencies file for bench_simcore_perf.
# This may be replaced when dependencies are built.
