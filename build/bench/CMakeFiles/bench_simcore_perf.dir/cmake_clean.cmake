file(REMOVE_RECURSE
  "CMakeFiles/bench_simcore_perf.dir/bench_simcore_perf.cpp.o"
  "CMakeFiles/bench_simcore_perf.dir/bench_simcore_perf.cpp.o.d"
  "bench_simcore_perf"
  "bench_simcore_perf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_simcore_perf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
