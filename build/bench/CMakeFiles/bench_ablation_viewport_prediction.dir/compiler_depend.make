# Empty compiler generated dependencies file for bench_ablation_viewport_prediction.
# This may be replaced when dependencies are built.
