file(REMOVE_RECURSE
  "CMakeFiles/bench_fig13_uplink_disruption.dir/bench_fig13_uplink_disruption.cpp.o"
  "CMakeFiles/bench_fig13_uplink_disruption.dir/bench_fig13_uplink_disruption.cpp.o.d"
  "bench_fig13_uplink_disruption"
  "bench_fig13_uplink_disruption.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig13_uplink_disruption.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
