# Empty dependencies file for bench_fig13_uplink_disruption.
# This may be replaced when dependencies are built.
