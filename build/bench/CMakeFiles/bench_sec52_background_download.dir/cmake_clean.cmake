file(REMOVE_RECURSE
  "CMakeFiles/bench_sec52_background_download.dir/bench_sec52_background_download.cpp.o"
  "CMakeFiles/bench_sec52_background_download.dir/bench_sec52_background_download.cpp.o.d"
  "bench_sec52_background_download"
  "bench_sec52_background_download.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sec52_background_download.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
