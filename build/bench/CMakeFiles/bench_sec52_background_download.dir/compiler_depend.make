# Empty compiler generated dependencies file for bench_sec52_background_download.
# This may be replaced when dependencies are built.
