# Empty dependencies file for bench_ext_workrooms.
# This may be replaced when dependencies are built.
