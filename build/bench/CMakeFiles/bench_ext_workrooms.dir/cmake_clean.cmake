file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_workrooms.dir/bench_ext_workrooms.cpp.o"
  "CMakeFiles/bench_ext_workrooms.dir/bench_ext_workrooms.cpp.o.d"
  "bench_ext_workrooms"
  "bench_ext_workrooms.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_workrooms.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
