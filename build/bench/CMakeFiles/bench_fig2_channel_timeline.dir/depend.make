# Empty dependencies file for bench_fig2_channel_timeline.
# This may be replaced when dependencies are built.
