file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_remote_rendering.dir/bench_ablation_remote_rendering.cpp.o"
  "CMakeFiles/bench_ablation_remote_rendering.dir/bench_ablation_remote_rendering.cpp.o.d"
  "bench_ablation_remote_rendering"
  "bench_ablation_remote_rendering.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_remote_rendering.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
