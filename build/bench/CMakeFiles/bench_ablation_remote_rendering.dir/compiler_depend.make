# Empty compiler generated dependencies file for bench_ablation_remote_rendering.
# This may be replaced when dependencies are built.
