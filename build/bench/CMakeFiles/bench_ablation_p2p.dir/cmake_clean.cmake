file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_p2p.dir/bench_ablation_p2p.cpp.o"
  "CMakeFiles/bench_ablation_p2p.dir/bench_ablation_p2p.cpp.o.d"
  "bench_ablation_p2p"
  "bench_ablation_p2p.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_p2p.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
