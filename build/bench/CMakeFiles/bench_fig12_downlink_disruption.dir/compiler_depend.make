# Empty compiler generated dependencies file for bench_fig12_downlink_disruption.
# This may be replaced when dependencies are built.
