# Empty dependencies file for remote_rendering.
# This may be replaced when dependencies are built.
