file(REMOVE_RECURSE
  "CMakeFiles/remote_rendering.dir/remote_rendering.cpp.o"
  "CMakeFiles/remote_rendering.dir/remote_rendering.cpp.o.d"
  "remote_rendering"
  "remote_rendering.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/remote_rendering.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
