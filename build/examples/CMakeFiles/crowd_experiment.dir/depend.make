# Empty dependencies file for crowd_experiment.
# This may be replaced when dependencies are built.
