file(REMOVE_RECURSE
  "CMakeFiles/crowd_experiment.dir/crowd_experiment.cpp.o"
  "CMakeFiles/crowd_experiment.dir/crowd_experiment.cpp.o.d"
  "crowd_experiment"
  "crowd_experiment.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/crowd_experiment.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
