# Empty compiler generated dependencies file for disruption_lab.
# This may be replaced when dependencies are built.
