file(REMOVE_RECURSE
  "CMakeFiles/disruption_lab.dir/disruption_lab.cpp.o"
  "CMakeFiles/disruption_lab.dir/disruption_lab.cpp.o.d"
  "disruption_lab"
  "disruption_lab.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/disruption_lab.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
