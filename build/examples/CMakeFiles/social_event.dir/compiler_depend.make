# Empty compiler generated dependencies file for social_event.
# This may be replaced when dependencies are built.
