file(REMOVE_RECURSE
  "CMakeFiles/social_event.dir/social_event.cpp.o"
  "CMakeFiles/social_event.dir/social_event.cpp.o.d"
  "social_event"
  "social_event.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/social_event.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
