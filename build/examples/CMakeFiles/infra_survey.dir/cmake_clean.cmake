file(REMOVE_RECURSE
  "CMakeFiles/infra_survey.dir/infra_survey.cpp.o"
  "CMakeFiles/infra_survey.dir/infra_survey.cpp.o.d"
  "infra_survey"
  "infra_survey.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/infra_survey.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
