# Empty dependencies file for infra_survey.
# This may be replaced when dependencies are built.
