# Empty compiler generated dependencies file for msim_geo.
# This may be replaced when dependencies are built.
