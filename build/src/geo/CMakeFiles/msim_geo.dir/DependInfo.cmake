
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/geo/dns.cpp" "src/geo/CMakeFiles/msim_geo.dir/dns.cpp.o" "gcc" "src/geo/CMakeFiles/msim_geo.dir/dns.cpp.o.d"
  "/root/repo/src/geo/fabric.cpp" "src/geo/CMakeFiles/msim_geo.dir/fabric.cpp.o" "gcc" "src/geo/CMakeFiles/msim_geo.dir/fabric.cpp.o.d"
  "/root/repo/src/geo/geo.cpp" "src/geo/CMakeFiles/msim_geo.dir/geo.cpp.o" "gcc" "src/geo/CMakeFiles/msim_geo.dir/geo.cpp.o.d"
  "/root/repo/src/geo/tools.cpp" "src/geo/CMakeFiles/msim_geo.dir/tools.cpp.o" "gcc" "src/geo/CMakeFiles/msim_geo.dir/tools.cpp.o.d"
  "/root/repo/src/geo/whois.cpp" "src/geo/CMakeFiles/msim_geo.dir/whois.cpp.o" "gcc" "src/geo/CMakeFiles/msim_geo.dir/whois.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/net/CMakeFiles/msim_net.dir/DependInfo.cmake"
  "/root/repo/build/src/transport/CMakeFiles/msim_transport.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/msim_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/msim_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
