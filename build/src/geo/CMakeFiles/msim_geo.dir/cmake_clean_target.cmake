file(REMOVE_RECURSE
  "libmsim_geo.a"
)
