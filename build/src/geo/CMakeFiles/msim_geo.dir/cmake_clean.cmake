file(REMOVE_RECURSE
  "CMakeFiles/msim_geo.dir/dns.cpp.o"
  "CMakeFiles/msim_geo.dir/dns.cpp.o.d"
  "CMakeFiles/msim_geo.dir/fabric.cpp.o"
  "CMakeFiles/msim_geo.dir/fabric.cpp.o.d"
  "CMakeFiles/msim_geo.dir/geo.cpp.o"
  "CMakeFiles/msim_geo.dir/geo.cpp.o.d"
  "CMakeFiles/msim_geo.dir/tools.cpp.o"
  "CMakeFiles/msim_geo.dir/tools.cpp.o.d"
  "CMakeFiles/msim_geo.dir/whois.cpp.o"
  "CMakeFiles/msim_geo.dir/whois.cpp.o.d"
  "libmsim_geo.a"
  "libmsim_geo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/msim_geo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
