file(REMOVE_RECURSE
  "CMakeFiles/msim_core.dir/autodriver.cpp.o"
  "CMakeFiles/msim_core.dir/autodriver.cpp.o.d"
  "CMakeFiles/msim_core.dir/capture.cpp.o"
  "CMakeFiles/msim_core.dir/capture.cpp.o.d"
  "CMakeFiles/msim_core.dir/disruptor.cpp.o"
  "CMakeFiles/msim_core.dir/disruptor.cpp.o.d"
  "CMakeFiles/msim_core.dir/experiments.cpp.o"
  "CMakeFiles/msim_core.dir/experiments.cpp.o.d"
  "CMakeFiles/msim_core.dir/latency.cpp.o"
  "CMakeFiles/msim_core.dir/latency.cpp.o.d"
  "CMakeFiles/msim_core.dir/testbed.cpp.o"
  "CMakeFiles/msim_core.dir/testbed.cpp.o.d"
  "libmsim_core.a"
  "libmsim_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/msim_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
