file(REMOVE_RECURSE
  "libmsim_core.a"
)
