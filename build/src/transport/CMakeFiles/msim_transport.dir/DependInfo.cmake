
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/transport/http.cpp" "src/transport/CMakeFiles/msim_transport.dir/http.cpp.o" "gcc" "src/transport/CMakeFiles/msim_transport.dir/http.cpp.o.d"
  "/root/repo/src/transport/mux.cpp" "src/transport/CMakeFiles/msim_transport.dir/mux.cpp.o" "gcc" "src/transport/CMakeFiles/msim_transport.dir/mux.cpp.o.d"
  "/root/repo/src/transport/rtp.cpp" "src/transport/CMakeFiles/msim_transport.dir/rtp.cpp.o" "gcc" "src/transport/CMakeFiles/msim_transport.dir/rtp.cpp.o.d"
  "/root/repo/src/transport/tcp.cpp" "src/transport/CMakeFiles/msim_transport.dir/tcp.cpp.o" "gcc" "src/transport/CMakeFiles/msim_transport.dir/tcp.cpp.o.d"
  "/root/repo/src/transport/tls.cpp" "src/transport/CMakeFiles/msim_transport.dir/tls.cpp.o" "gcc" "src/transport/CMakeFiles/msim_transport.dir/tls.cpp.o.d"
  "/root/repo/src/transport/udp.cpp" "src/transport/CMakeFiles/msim_transport.dir/udp.cpp.o" "gcc" "src/transport/CMakeFiles/msim_transport.dir/udp.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/net/CMakeFiles/msim_net.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/msim_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/msim_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
