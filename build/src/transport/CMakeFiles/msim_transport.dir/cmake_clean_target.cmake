file(REMOVE_RECURSE
  "libmsim_transport.a"
)
