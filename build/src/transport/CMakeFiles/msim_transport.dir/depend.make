# Empty dependencies file for msim_transport.
# This may be replaced when dependencies are built.
