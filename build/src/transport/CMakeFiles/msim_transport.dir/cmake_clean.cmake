file(REMOVE_RECURSE
  "CMakeFiles/msim_transport.dir/http.cpp.o"
  "CMakeFiles/msim_transport.dir/http.cpp.o.d"
  "CMakeFiles/msim_transport.dir/mux.cpp.o"
  "CMakeFiles/msim_transport.dir/mux.cpp.o.d"
  "CMakeFiles/msim_transport.dir/rtp.cpp.o"
  "CMakeFiles/msim_transport.dir/rtp.cpp.o.d"
  "CMakeFiles/msim_transport.dir/tcp.cpp.o"
  "CMakeFiles/msim_transport.dir/tcp.cpp.o.d"
  "CMakeFiles/msim_transport.dir/tls.cpp.o"
  "CMakeFiles/msim_transport.dir/tls.cpp.o.d"
  "CMakeFiles/msim_transport.dir/udp.cpp.o"
  "CMakeFiles/msim_transport.dir/udp.cpp.o.d"
  "libmsim_transport.a"
  "libmsim_transport.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/msim_transport.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
