file(REMOVE_RECURSE
  "libmsim_client.a"
)
