file(REMOVE_RECURSE
  "CMakeFiles/msim_client.dir/device.cpp.o"
  "CMakeFiles/msim_client.dir/device.cpp.o.d"
  "CMakeFiles/msim_client.dir/headset.cpp.o"
  "CMakeFiles/msim_client.dir/headset.cpp.o.d"
  "CMakeFiles/msim_client.dir/metrics.cpp.o"
  "CMakeFiles/msim_client.dir/metrics.cpp.o.d"
  "CMakeFiles/msim_client.dir/render.cpp.o"
  "CMakeFiles/msim_client.dir/render.cpp.o.d"
  "libmsim_client.a"
  "libmsim_client.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/msim_client.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
