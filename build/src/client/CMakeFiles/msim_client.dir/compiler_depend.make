# Empty compiler generated dependencies file for msim_client.
# This may be replaced when dependencies are built.
