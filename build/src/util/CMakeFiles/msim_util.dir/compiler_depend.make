# Empty compiler generated dependencies file for msim_util.
# This may be replaced when dependencies are built.
