
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/util/rate.cpp" "src/util/CMakeFiles/msim_util.dir/rate.cpp.o" "gcc" "src/util/CMakeFiles/msim_util.dir/rate.cpp.o.d"
  "/root/repo/src/util/stats.cpp" "src/util/CMakeFiles/msim_util.dir/stats.cpp.o" "gcc" "src/util/CMakeFiles/msim_util.dir/stats.cpp.o.d"
  "/root/repo/src/util/table.cpp" "src/util/CMakeFiles/msim_util.dir/table.cpp.o" "gcc" "src/util/CMakeFiles/msim_util.dir/table.cpp.o.d"
  "/root/repo/src/util/time.cpp" "src/util/CMakeFiles/msim_util.dir/time.cpp.o" "gcc" "src/util/CMakeFiles/msim_util.dir/time.cpp.o.d"
  "/root/repo/src/util/timeseries.cpp" "src/util/CMakeFiles/msim_util.dir/timeseries.cpp.o" "gcc" "src/util/CMakeFiles/msim_util.dir/timeseries.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
