file(REMOVE_RECURSE
  "CMakeFiles/msim_util.dir/rate.cpp.o"
  "CMakeFiles/msim_util.dir/rate.cpp.o.d"
  "CMakeFiles/msim_util.dir/stats.cpp.o"
  "CMakeFiles/msim_util.dir/stats.cpp.o.d"
  "CMakeFiles/msim_util.dir/table.cpp.o"
  "CMakeFiles/msim_util.dir/table.cpp.o.d"
  "CMakeFiles/msim_util.dir/time.cpp.o"
  "CMakeFiles/msim_util.dir/time.cpp.o.d"
  "CMakeFiles/msim_util.dir/timeseries.cpp.o"
  "CMakeFiles/msim_util.dir/timeseries.cpp.o.d"
  "libmsim_util.a"
  "libmsim_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/msim_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
