file(REMOVE_RECURSE
  "libmsim_util.a"
)
