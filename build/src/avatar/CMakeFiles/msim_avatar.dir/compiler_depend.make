# Empty compiler generated dependencies file for msim_avatar.
# This may be replaced when dependencies are built.
