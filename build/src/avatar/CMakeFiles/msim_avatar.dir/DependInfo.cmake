
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/avatar/codec.cpp" "src/avatar/CMakeFiles/msim_avatar.dir/codec.cpp.o" "gcc" "src/avatar/CMakeFiles/msim_avatar.dir/codec.cpp.o.d"
  "/root/repo/src/avatar/motion.cpp" "src/avatar/CMakeFiles/msim_avatar.dir/motion.cpp.o" "gcc" "src/avatar/CMakeFiles/msim_avatar.dir/motion.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/net/CMakeFiles/msim_net.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/msim_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/msim_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
