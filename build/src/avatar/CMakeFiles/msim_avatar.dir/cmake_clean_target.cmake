file(REMOVE_RECURSE
  "libmsim_avatar.a"
)
