file(REMOVE_RECURSE
  "CMakeFiles/msim_avatar.dir/codec.cpp.o"
  "CMakeFiles/msim_avatar.dir/codec.cpp.o.d"
  "CMakeFiles/msim_avatar.dir/motion.cpp.o"
  "CMakeFiles/msim_avatar.dir/motion.cpp.o.d"
  "libmsim_avatar.a"
  "libmsim_avatar.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/msim_avatar.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
