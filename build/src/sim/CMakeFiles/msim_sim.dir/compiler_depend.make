# Empty compiler generated dependencies file for msim_sim.
# This may be replaced when dependencies are built.
