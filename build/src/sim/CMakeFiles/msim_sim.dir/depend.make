# Empty dependencies file for msim_sim.
# This may be replaced when dependencies are built.
