file(REMOVE_RECURSE
  "CMakeFiles/msim_platform.dir/catalog.cpp.o"
  "CMakeFiles/msim_platform.dir/catalog.cpp.o.d"
  "CMakeFiles/msim_platform.dir/client_app.cpp.o"
  "CMakeFiles/msim_platform.dir/client_app.cpp.o.d"
  "CMakeFiles/msim_platform.dir/control.cpp.o"
  "CMakeFiles/msim_platform.dir/control.cpp.o.d"
  "CMakeFiles/msim_platform.dir/deployment.cpp.o"
  "CMakeFiles/msim_platform.dir/deployment.cpp.o.d"
  "CMakeFiles/msim_platform.dir/extensions.cpp.o"
  "CMakeFiles/msim_platform.dir/extensions.cpp.o.d"
  "CMakeFiles/msim_platform.dir/p2p.cpp.o"
  "CMakeFiles/msim_platform.dir/p2p.cpp.o.d"
  "CMakeFiles/msim_platform.dir/relay.cpp.o"
  "CMakeFiles/msim_platform.dir/relay.cpp.o.d"
  "CMakeFiles/msim_platform.dir/remote_render.cpp.o"
  "CMakeFiles/msim_platform.dir/remote_render.cpp.o.d"
  "CMakeFiles/msim_platform.dir/rtp_relay.cpp.o"
  "CMakeFiles/msim_platform.dir/rtp_relay.cpp.o.d"
  "libmsim_platform.a"
  "libmsim_platform.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/msim_platform.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
