file(REMOVE_RECURSE
  "libmsim_platform.a"
)
