
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/platform/catalog.cpp" "src/platform/CMakeFiles/msim_platform.dir/catalog.cpp.o" "gcc" "src/platform/CMakeFiles/msim_platform.dir/catalog.cpp.o.d"
  "/root/repo/src/platform/client_app.cpp" "src/platform/CMakeFiles/msim_platform.dir/client_app.cpp.o" "gcc" "src/platform/CMakeFiles/msim_platform.dir/client_app.cpp.o.d"
  "/root/repo/src/platform/control.cpp" "src/platform/CMakeFiles/msim_platform.dir/control.cpp.o" "gcc" "src/platform/CMakeFiles/msim_platform.dir/control.cpp.o.d"
  "/root/repo/src/platform/deployment.cpp" "src/platform/CMakeFiles/msim_platform.dir/deployment.cpp.o" "gcc" "src/platform/CMakeFiles/msim_platform.dir/deployment.cpp.o.d"
  "/root/repo/src/platform/extensions.cpp" "src/platform/CMakeFiles/msim_platform.dir/extensions.cpp.o" "gcc" "src/platform/CMakeFiles/msim_platform.dir/extensions.cpp.o.d"
  "/root/repo/src/platform/p2p.cpp" "src/platform/CMakeFiles/msim_platform.dir/p2p.cpp.o" "gcc" "src/platform/CMakeFiles/msim_platform.dir/p2p.cpp.o.d"
  "/root/repo/src/platform/relay.cpp" "src/platform/CMakeFiles/msim_platform.dir/relay.cpp.o" "gcc" "src/platform/CMakeFiles/msim_platform.dir/relay.cpp.o.d"
  "/root/repo/src/platform/remote_render.cpp" "src/platform/CMakeFiles/msim_platform.dir/remote_render.cpp.o" "gcc" "src/platform/CMakeFiles/msim_platform.dir/remote_render.cpp.o.d"
  "/root/repo/src/platform/rtp_relay.cpp" "src/platform/CMakeFiles/msim_platform.dir/rtp_relay.cpp.o" "gcc" "src/platform/CMakeFiles/msim_platform.dir/rtp_relay.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/avatar/CMakeFiles/msim_avatar.dir/DependInfo.cmake"
  "/root/repo/build/src/client/CMakeFiles/msim_client.dir/DependInfo.cmake"
  "/root/repo/build/src/geo/CMakeFiles/msim_geo.dir/DependInfo.cmake"
  "/root/repo/build/src/transport/CMakeFiles/msim_transport.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/msim_net.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/msim_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/msim_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
