# Empty dependencies file for msim_platform.
# This may be replaced when dependencies are built.
