file(REMOVE_RECURSE
  "CMakeFiles/msim_net.dir/address.cpp.o"
  "CMakeFiles/msim_net.dir/address.cpp.o.d"
  "CMakeFiles/msim_net.dir/netem.cpp.o"
  "CMakeFiles/msim_net.dir/netem.cpp.o.d"
  "CMakeFiles/msim_net.dir/node.cpp.o"
  "CMakeFiles/msim_net.dir/node.cpp.o.d"
  "CMakeFiles/msim_net.dir/packet.cpp.o"
  "CMakeFiles/msim_net.dir/packet.cpp.o.d"
  "libmsim_net.a"
  "libmsim_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/msim_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
