file(REMOVE_RECURSE
  "libmsim_net.a"
)
