# Empty compiler generated dependencies file for msim_net.
# This may be replaced when dependencies are built.
