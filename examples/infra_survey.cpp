// Infrastructure survey: run the paper's §4 toolbox — ping, TCP ping,
// traceroute, WHOIS/geolocation, anycast inference — against any platform's
// server fleet, from any vantage region.
//
//   ./infra_survey [platform] [vantage-region]
//   regions: us-east us-west us-north europe middle-east

#include <cstdio>
#include <string>

#include "core/experiments.hpp"
#include "geo/tools.hpp"

using namespace msim;

int main(int argc, char** argv) {
  const std::string platName = argc > 1 ? argv[1] : "recroom";
  const std::string regionName = argc > 2 ? argv[2] : "us-east";

  PlatformSpec spec = platforms::recRoom();
  for (const PlatformSpec& p : platforms::allFive()) {
    std::string lower = p.name;
    for (char& c : lower) c = static_cast<char>(std::tolower(c));
    lower.erase(std::remove(lower.begin(), lower.end(), ' '), lower.end());
    if (lower == platName) spec = p;
  }
  Region vantageRegion = regions::usEast();
  for (const Region& r : regions::all()) {
    if (r.name == regionName) vantageRegion = r;
  }

  std::printf("== infrastructure survey: %s, probing from %s ==\n\n",
              spec.name.c_str(), vantageRegion.name.c_str());

  Testbed bed{5};
  bed.deploy(spec);
  Node& vantage = bed.fabric().attachHost("vantage", vantageRegion,
                                          Ipv4Address(10, 99, 0, 1));
  Node& north = bed.fabric().attachHost("x-north", regions::usNorth(),
                                        Ipv4Address(10, 99, 0, 2));
  Node& mideast = bed.fabric().attachHost("x-me", regions::middleEast(),
                                          Ipv4Address(10, 99, 0, 3));

  const WhoisDb whois = addrplan::defaultWhois();
  const Endpoint ctl = bed.deployment().controlEndpointFor(vantageRegion);
  const Endpoint data = bed.deployment().dataEndpointFor(vantageRegion, 0);

  for (const auto& [label, ep] :
       {std::pair{std::string{"control"}, ctl}, std::pair{std::string{"data"}, data}}) {
    std::printf("--- %s channel: %s ---\n", label.c_str(), ep.toString().c_str());
    std::printf("whois: owner=%s registered-geo=%s\n",
                whois.ownerOf(ep.addr).c_str(), whois.geolocate(ep.addr).c_str());

    PingTool pinger{vantage};
    pinger.ping(ep.addr, 10, [&](const PingResult& r) {
      if (r.reachable()) {
        std::printf("ping: %d/%d replies, rtt %.2f/%.2f ms (avg/std)\n",
                    r.received, r.sent, r.rttMs.mean(), r.rttMs.stddev());
      } else {
        std::printf("ping: no ICMP replies (host blocks ICMP?)\n");
      }
    });
    TracerouteTool tracer{vantage};
    tracer.trace(ep.addr, [&](const std::vector<TracerouteHop>& hops) {
      std::printf("traceroute:\n");
      for (const auto& hop : hops) {
        std::printf("  %2d  %-16s %7.2f ms%s\n", hop.ttl,
                    hop.addr.isUnspecified() ? "*" : hop.addr.toString().c_str(),
                    hop.rttMs, hop.reachedTarget ? "  <- target" : "");
      }
    });
    AnycastInference::run(bed.sim(), {&vantage, &north, &mideast}, ep.addr,
                          [&](const AnycastReport& rep) {
                            std::printf("anycast inference: %s (%s)\n",
                                        rep.likelyAnycast ? "ANYCAST" : "unicast",
                                        rep.rationale.c_str());
                          });
    bed.sim().runFor(Duration::seconds(30));
    std::printf("\n");
  }
  return 0;
}
