// Remote rendering demo (§6.3): the same growing event, served two ways.
// Left: today's relay architecture — downlink and frame cost grow with the
// crowd. Right: a cloud-rendered stream — flat per-user cost, but at
// cloud-gaming bitrates and one server render per viewer.
//
//   ./remote_rendering [maxUsers]

#include <cstdio>

#include "core/experiments.hpp"
#include "platform/remote_render.hpp"

using namespace msim;

int main(int argc, char** argv) {
  const int maxUsers = argc > 1 ? std::atoi(argv[1]) : 15;
  std::printf("== remote rendering vs relay (Worlds avatars, %d users) ==\n\n",
              maxUsers);

  std::printf("%6s | %12s %6s %6s | %12s %6s %6s %10s\n", "users",
              "relay Mbps", "fps", "cpu%", "stream Mbps", "fps", "cpu%",
              "srv GPUs");
  for (const int n : {2, 5, 10, maxUsers}) {
    const SweepPoint relay =
        runUsersSweepPoint(platforms::worlds(), n, 2, Duration::seconds(20));

    // Remote-rendering side.
    Simulator sim{13};
    Network net{sim};
    InternetFabric fabric{net};
    Node& serverNode = fabric.attachHost("rr", regions::usEast(),
                                         Ipv4Address(100, 3, 1, 210));
    RemoteRenderSpec spec;
    spec.serverGpuMsPerSec = 8000.0;
    RemoteRenderServer server{serverNode, 6000, spec};
    std::vector<std::unique_ptr<HeadsetDevice>> headsets;
    std::vector<std::unique_ptr<RemoteRenderClient>> clients;
    std::int64_t bytes = 0;
    for (int i = 0; i < n; ++i) {
      Node& node = fabric.attachHost(
          "v" + std::to_string(i), regions::usEast(),
          Ipv4Address(10, 70, 0, static_cast<std::uint8_t>(i + 1)));
      if (i == 0) {
        node.devices().back()->addTap([&bytes](const Packet& p, TapDir dir) {
          if (dir == TapDir::Ingress) bytes += p.wireSize().toBytes();
        });
      }
      headsets.push_back(
          std::make_unique<HeadsetDevice>(sim, node, devices::quest2()));
      clients.push_back(std::make_unique<RemoteRenderClient>(
          *headsets.back(), Endpoint{serverNode.primaryAddress(), 6000},
          static_cast<std::uint64_t>(i + 1), spec));
      clients.back()->start();
    }
    sim.runFor(Duration::seconds(5));
    bytes = 0;
    const TimePoint from = sim.now();
    sim.runFor(Duration::seconds(15));
    const double rrMbps = rateOf(ByteSize::bytes(bytes), sim.now() - from).toMbps();
    const MetricsSample rr = headsets[0]->metrics().averageOver(from, sim.now());

    std::printf("%6d | %12.2f %6.1f %6.0f | %12.1f %6.1f %6.0f %9.1fx\n", n,
                relay.downMbps, relay.fps, relay.cpuPct, rrMbps, rr.fps,
                rr.cpuUtilPct, server.serverGpuUtilization() * 8.0);
  }
  std::printf(
      "\nrelay: per-user downlink and device load scale with the crowd.\n"
      "remote rendering: both flat — the cost moved to a ~28 Mbps stream\n"
      "and one server-side render per viewer (§6.3's trade-off).\n");
  return 0;
}
