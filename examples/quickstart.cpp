// Quickstart: simulate two users meeting in a social VR platform and
// measure what the paper measured — throughput by channel, frame rate,
// device utilization, and end-to-end action latency.
//
//   ./quickstart [platform]     platform: altspacevr|hubs|recroom|vrchat|worlds

#include <cstdio>
#include <string>

#include "core/experiments.hpp"

using namespace msim;

namespace {
PlatformSpec pickPlatform(const std::string& name) {
  if (name == "altspacevr") return platforms::altspaceVR();
  if (name == "hubs") return platforms::hubs();
  if (name == "recroom") return platforms::recRoom();
  if (name == "vrchat") return platforms::vrchat();
  return platforms::worlds();
}
}  // namespace

int main(int argc, char** argv) {
  const PlatformSpec spec = pickPlatform(argc > 1 ? argv[1] : "worlds");
  std::printf("== quickstart: two users on %s ==\n\n", spec.name.c_str());

  // 1. Build the Fig. 1 testbed: two Quest 2 users behind their own WiFi
  //    APs on a U.S. east-coast campus, plus the platform's server fleet.
  Testbed bed{/*seed=*/42};
  bed.deploy(spec);
  TestUser& alice = bed.addUser();
  TestUser& bob = bed.addUser();

  // Face each other two meters apart, like the paper's chat workload.
  alice.client->motion().setPose(Pose{0, 0, 0});
  bob.client->motion().setPose(Pose{2, 0, 180});
  alice.client->setFaceTarget(2, 0);
  bob.client->setFaceTarget(0, 0);

  // 2. Launch the apps (welcome page + background downloads), then join a
  //    private event, then talk for a while.
  bed.sim().schedule(TimePoint::epoch(), [&] {
    alice.client->launch();
    bob.client->launch();
  });
  bed.sim().schedule(TimePoint::epoch() + Duration::seconds(10), [&] {
    alice.client->joinEvent();
    bob.client->joinEvent();
    alice.client->setMuted(false);  // quickstart users actually speak
    bob.client->setMuted(false);
  });

  // 3. Probe end-to-end latency with the paper's finger-touch method.
  LatencyProbe probe{bed, alice, bob};
  probe.scheduleProbes(TimePoint::epoch() + Duration::seconds(30), 10);

  bed.sim().runFor(Duration::seconds(60));

  // 4. Report. Everything below is what `Wireshark on the AP` + the OVR
  //    Metrics Tool + the screen recordings would tell you.
  const auto& cap = *alice.capture;
  std::printf("Alice's AP capture, seconds 30-59 of the event:\n");
  std::printf("  data-channel uplink:    %7.1f Kbps\n",
              cap.meanRate(Channel::DataUp, 30, 59).toKbps());
  std::printf("  data-channel downlink:  %7.1f Kbps\n",
              cap.meanRate(Channel::DataDown, 30, 59).toKbps());
  std::printf("  control-channel up/down:%7.1f / %.1f Kbps\n",
              cap.meanRate(Channel::ControlUp, 30, 59).toKbps(),
              cap.meanRate(Channel::ControlDown, 30, 59).toKbps());

  const MetricsSample dev = alice.headset->metrics().averageOver(
      TimePoint::epoch() + Duration::seconds(30), bed.sim().now());
  std::printf("Alice's Quest 2 (OVR metrics):\n");
  std::printf("  FPS %.1f | CPU %.0f%% | GPU %.0f%% | memory %.2f GB | "
              "battery %.1f%%\n",
              dev.fps, dev.cpuUtilPct, dev.gpuUtilPct, dev.memoryGB,
              alice.headset->metrics().batteryPct());

  const LatencyStats lat = probe.collect();
  std::printf("End-to-end latency (Alice's action -> Bob's display):\n");
  std::printf("  E2E %.1f ms (sender %.1f + network %.1f + server %.1f + "
              "receiver %.1f)\n",
              lat.e2e.mean(), lat.sender.mean(), lat.network.mean(),
              lat.server.mean(), lat.receiver.mean());
  std::printf("\nTry: %s hubs   (web stack + west-coast servers => ~2x the "
              "latency)\n",
              argc > 0 ? argv[0] : "quickstart");
  return 0;
}
