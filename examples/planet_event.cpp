// A "planet-scale" social event on a sharded relay cluster.
//
// The paper ends by asking whether today's architectures are ready for the
// metaverse (§9): one relay machine falls over long before "thousands of
// users in one world". This example runs the escape hatch the measurements
// point at (§4.2): a fleet of relay instances behind a capacity-aware
// gateway, with users matched to instances by region, an instance drained
// live mid-event (its room migrates with zero loss), and a fresh instance
// spun up to absorb new arrivals.
//
//   ./planet_event [users] [instances] [--churn]
//
// With --churn, the drain is replaced by the rude version: a shard *crashes*
// mid-event with live sessions on it. The session tier (src/session) takes
// over — every orphaned client discovers the death through its ping
// deadline, backs off with jitter, and storms back through the gateway,
// which re-places the stale pins and replays each channel's missed interval
// from history. The run prints the storm draining and gates on the
// exactly-once ledger: zero lost, zero duplicate, zero out-of-order.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <string>

#include "avatar/codec.hpp"
#include "avatar/spec.hpp"
#include "cluster/manager.hpp"
#include "cluster/sessions.hpp"
#include "util/table.hpp"

using namespace msim;
using namespace msim::cluster;

namespace {

void printCluster(const InstanceManager& mgr, double atSec) {
  std::printf("\n--- cluster at t=%.0fs ---\n", atSec);
  TablePrinter table{{"shard", "region", "state", "users", "forwards",
                      "util", "inflation"}};
  const ClusterStats stats = mgr.stats();
  for (const auto& row : stats.shards) {
    char util[32];
    char infl[32];
    std::snprintf(util, sizeof(util), "%.3f", row.utilization);
    std::snprintf(infl, sizeof(infl), "%.2f", row.queueInflation);
    table.addRow({std::to_string(row.id), row.region, toString(row.state),
                  std::to_string(row.users), std::to_string(row.forwards),
                  util, infl});
  }
  table.print(std::cout);
  std::printf("placements %llu | migrations %llu (%llu users) | drains %llu\n",
              static_cast<unsigned long long>(stats.placementsTotal),
              static_cast<unsigned long long>(stats.migrations),
              static_cast<unsigned long long>(stats.migratedUsers),
              static_cast<unsigned long long>(stats.drains));
}

int runChurnEvent(int users, int instances) {
  std::printf("planet_event --churn: %d sessions, %d relay shards\n", users,
              instances);

  // The same event, but the mid-event disruption is a *crash*: shard 0 dies
  // silently at t=20s with its share of the crowd connected and subscribed.
  ChurnWorkloadConfig cfg;
  cfg.sessions = users;
  cfg.shards = instances;
  cfg.channels = 16;
  cfg.connectWindow = Duration::seconds(2);
  cfg.publishStart = Duration::seconds(5);
  cfg.publishEvery = Duration::millis(250);
  cfg.publishUntil = Duration::seconds(45);
  cfg.runFor = Duration::seconds(60);
  cfg.crashAt = Duration::seconds(20);
  cfg.session.pingInterval = Duration::seconds(5);
  cfg.session.maxPingDelay = Duration::seconds(2);
  cfg.session.minReconnectDelay = Duration::millis(200);
  cfg.session.maxReconnectDelay = Duration::seconds(5);
  const ChurnWorkloadResult r = runChurnWorkload(2026, cfg);

  std::printf(
      "\n>>> shard 0 crashed at t=%.0fs with live sessions pinned to it\n"
      ">>> ping deadlines fired: %llu sessions discovered the death\n"
      ">>> reconnect storm: %llu reconnects drained through the gateway\n"
      "    (%llu kept their sticky pin, %llu re-placed off the dead shard;\n"
      "     peak connect queue %zu deep)\n",
      cfg.crashAt.toSeconds(),
      static_cast<unsigned long long>(r.pingTimeouts),
      static_cast<unsigned long long>(r.reconnects),
      static_cast<unsigned long long>(r.reconnectsSticky),
      static_cast<unsigned long long>(r.reconnectsReplaced),
      r.peakPendingConnects);

  TablePrinter table{{"metric", "value"}};
  table.addRow({"published per channel", std::to_string(r.published)});
  table.addRow({"delivered", std::to_string(r.received)});
  table.addRow({"recovered via history replay", std::to_string(r.recovered)});
  table.addRow({"lost", std::to_string(r.lost)});
  table.addRow({"duplicates", std::to_string(r.duplicates)});
  table.addRow({"out-of-order gaps", std::to_string(r.gaps)});
  table.addRow({"full rejoins", std::to_string(r.fullRejoins)});
  table.addRow({"connected at end", std::to_string(r.connectedAtEnd)});
  table.print(std::cout);

  const bool ok = r.lost == 0 && r.duplicates == 0 && r.gaps == 0 &&
                  r.connectedAtEnd == static_cast<std::size_t>(users);
  std::printf("\n%s: every subscriber saw every message exactly once and in "
              "order across the crash.\n",
              ok ? "zero-loss churn" : "LOSS DETECTED");
  return ok ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  bool churn = false;
  int positional[2] = {1200, 8};
  int npos = 0;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--churn") == 0) {
      churn = true;
    } else if (npos < 2) {
      positional[npos++] = std::atoi(argv[i]);
    }
  }
  const int users = positional[0];
  const int instances = positional[1];

  if (churn) return runChurnEvent(users, instances);

  std::printf("planet_event: %d users, %d relay instances, 3 regions\n", users,
              instances);

  Simulator sim{2026};
  ClusterConfig cfg;
  cfg.initialInstances = instances;
  cfg.policy = PlacementPolicy::RegionAffinity;
  cfg.regions = {regions::usEast(), regions::usWest(), regions::europe()};
  cfg.spinUpDelay = Duration::seconds(3);
  // Beefier hosts than the paper's single testbed box: each shard should sit
  // below the saturation knee at its planned occupancy, so inflation only
  // shows up where the event actually overloads a shard.
  cfg.capacity.cores = 8;
  InstanceManager mgr{sim, DataSpec{}, cfg};

  std::uint64_t delivered = 0;
  mgr.setDeliverySink(
      [&delivered](std::uint32_t, std::uint64_t, const Message&) {
        ++delivered;
      });

  // The crowd joins from three regions; region affinity keeps each user on
  // a nearby shard until its soft capacity trips.
  for (int i = 0; i < users; ++i) {
    const Region& home = cfg.regions[static_cast<std::size_t>(i) % 3];
    if (mgr.joinUser(static_cast<std::uint64_t>(i + 1), home) == nullptr) {
      std::printf("cluster full at user %d\n", i + 1);
      break;
    }
  }

  // Everyone animates at the avatar update rate.
  AvatarSpec avatar;
  Message pose;
  pose.kind = avatarmsg::kPoseUpdate;
  pose.size = avatar.bytesPerUpdate;
  std::uint64_t seq = 0;
  PeriodicTask pacer{sim, Duration::seconds(1.0 / avatar.updateRateHz), [&] {
                       for (const auto& inst : mgr.instances()) {
                         if (inst->userCount() < 2) continue;
                         for (const std::uint64_t id : inst->room().userIds()) {
                           pose.senderId = id;
                           pose.sequence = ++seq;
                           inst->room().broadcast(id, pose);
                         }
                       }
                     }};

  sim.runFor(Duration::seconds(5));
  printCluster(mgr, 5);

  // Ops drains the last shard (say, for a host kernel upgrade): its room
  // migrates live to the policy's pick; nobody's stream drops.
  const auto victim = static_cast<std::uint32_t>(instances - 1);
  std::printf("\n>>> draining shard %u (live migration)...\n", victim);
  const std::size_t moved = mgr.drain(victim);
  std::printf(">>> %zu users migrated; shard %u is %s\n", moved, victim,
              toString(mgr.instance(victim)->state()));

  // A replacement boots with the configured spin-up delay and starts taking
  // late arrivals once Active.
  RelayInstance& fresh = mgr.spinUp(regions::usEast());
  std::printf(">>> spinning up shard %u in %s (boots in %.0f s)\n", fresh.id(),
              fresh.region().name.c_str(), cfg.spinUpDelay.toSeconds());
  sim.runFor(Duration::seconds(5));
  for (int i = 0; i < 40; ++i) {
    mgr.joinUser(static_cast<std::uint64_t>(users + i + 1), regions::usEast());
  }
  sim.runFor(Duration::seconds(5));
  printCluster(mgr, 15);

  std::printf("\n%llu avatar updates delivered; every user kept a live room "
              "throughout.\n",
              static_cast<unsigned long long>(delivered));
  return 0;
}
