// A "planet-scale" social event on a sharded relay cluster.
//
// The paper ends by asking whether today's architectures are ready for the
// metaverse (§9): one relay machine falls over long before "thousands of
// users in one world". This example runs the escape hatch the measurements
// point at (§4.2): a fleet of relay instances behind a capacity-aware
// gateway, with users matched to instances by region, an instance drained
// live mid-event (its room migrates with zero loss), and a fresh instance
// spun up to absorb new arrivals.
//
//   ./planet_event [users] [instances]

#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <string>

#include "avatar/codec.hpp"
#include "avatar/spec.hpp"
#include "cluster/manager.hpp"
#include "util/table.hpp"

using namespace msim;
using namespace msim::cluster;

namespace {

void printCluster(const InstanceManager& mgr, double atSec) {
  std::printf("\n--- cluster at t=%.0fs ---\n", atSec);
  TablePrinter table{{"shard", "region", "state", "users", "forwards",
                      "util", "inflation"}};
  const ClusterStats stats = mgr.stats();
  for (const auto& row : stats.shards) {
    char util[32];
    char infl[32];
    std::snprintf(util, sizeof(util), "%.3f", row.utilization);
    std::snprintf(infl, sizeof(infl), "%.2f", row.queueInflation);
    table.addRow({std::to_string(row.id), row.region, toString(row.state),
                  std::to_string(row.users), std::to_string(row.forwards),
                  util, infl});
  }
  table.print(std::cout);
  std::printf("placements %llu | migrations %llu (%llu users) | drains %llu\n",
              static_cast<unsigned long long>(stats.placementsTotal),
              static_cast<unsigned long long>(stats.migrations),
              static_cast<unsigned long long>(stats.migratedUsers),
              static_cast<unsigned long long>(stats.drains));
}

}  // namespace

int main(int argc, char** argv) {
  const int users = argc > 1 ? std::atoi(argv[1]) : 1200;
  const int instances = argc > 2 ? std::atoi(argv[2]) : 8;

  std::printf("planet_event: %d users, %d relay instances, 3 regions\n", users,
              instances);

  Simulator sim{2026};
  ClusterConfig cfg;
  cfg.initialInstances = instances;
  cfg.policy = PlacementPolicy::RegionAffinity;
  cfg.regions = {regions::usEast(), regions::usWest(), regions::europe()};
  cfg.spinUpDelay = Duration::seconds(3);
  // Beefier hosts than the paper's single testbed box: each shard should sit
  // below the saturation knee at its planned occupancy, so inflation only
  // shows up where the event actually overloads a shard.
  cfg.capacity.cores = 8;
  InstanceManager mgr{sim, DataSpec{}, cfg};

  std::uint64_t delivered = 0;
  mgr.setDeliverySink(
      [&delivered](std::uint32_t, std::uint64_t, const Message&) {
        ++delivered;
      });

  // The crowd joins from three regions; region affinity keeps each user on
  // a nearby shard until its soft capacity trips.
  for (int i = 0; i < users; ++i) {
    const Region& home = cfg.regions[static_cast<std::size_t>(i) % 3];
    if (mgr.joinUser(static_cast<std::uint64_t>(i + 1), home) == nullptr) {
      std::printf("cluster full at user %d\n", i + 1);
      break;
    }
  }

  // Everyone animates at the avatar update rate.
  AvatarSpec avatar;
  Message pose;
  pose.kind = avatarmsg::kPoseUpdate;
  pose.size = avatar.bytesPerUpdate;
  std::uint64_t seq = 0;
  PeriodicTask pacer{sim, Duration::seconds(1.0 / avatar.updateRateHz), [&] {
                       for (const auto& inst : mgr.instances()) {
                         if (inst->userCount() < 2) continue;
                         for (const std::uint64_t id : inst->room().userIds()) {
                           pose.senderId = id;
                           pose.sequence = ++seq;
                           inst->room().broadcast(id, pose);
                         }
                       }
                     }};

  sim.runFor(Duration::seconds(5));
  printCluster(mgr, 5);

  // Ops drains the last shard (say, for a host kernel upgrade): its room
  // migrates live to the policy's pick; nobody's stream drops.
  const auto victim = static_cast<std::uint32_t>(instances - 1);
  std::printf("\n>>> draining shard %u (live migration)...\n", victim);
  const std::size_t moved = mgr.drain(victim);
  std::printf(">>> %zu users migrated; shard %u is %s\n", moved, victim,
              toString(mgr.instance(victim)->state()));

  // A replacement boots with the configured spin-up delay and starts taking
  // late arrivals once Active.
  RelayInstance& fresh = mgr.spinUp(regions::usEast());
  std::printf(">>> spinning up shard %u in %s (boots in %.0f s)\n", fresh.id(),
              fresh.region().name.c_str(), cfg.spinUpDelay.toSeconds());
  sim.runFor(Duration::seconds(5));
  for (int i = 0; i < 40; ++i) {
    mgr.joinUser(static_cast<std::uint64_t>(users + i + 1), regions::usEast());
  }
  sim.runFor(Duration::seconds(5));
  printCluster(mgr, 15);

  std::printf("\n%llu avatar updates delivered; every user kept a live room "
              "throughout.\n",
              static_cast<unsigned long long>(delivered));
  return 0;
}
