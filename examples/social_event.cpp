// A public social event that grows over time — the §6 scalability scenario
// as a runnable story. Users trickle into an event; we watch one attendee's
// downlink, frame rate and device load degrade as the relay fans out ever
// more avatar data.
//
//   ./social_event [platform] [maxUsers]

#include <cstdio>
#include <string>

#include "core/experiments.hpp"

using namespace msim;

int main(int argc, char** argv) {
  const std::string name = argc > 1 ? argv[1] : "worlds";
  const int maxUsers = argc > 2 ? std::atoi(argv[2]) : 12;

  PlatformSpec spec = platforms::worlds();
  for (const PlatformSpec& p : platforms::allFive()) {
    std::string lower = p.name;
    for (char& c : lower) c = static_cast<char>(std::tolower(c));
    lower.erase(std::remove(lower.begin(), lower.end(), ' '), lower.end());
    if (lower == name) spec = p;
  }

  std::printf("== social event on %s: %d attendees joining one by one ==\n\n",
              spec.name.c_str(), maxUsers);

  Testbed bed{7};
  bed.deploy(spec);
  for (int i = 0; i < maxUsers; ++i) bed.addUser();
  arrangeUsersForSweep(bed);  // everyone visible to user 0

  bed.sim().schedule(TimePoint::epoch(), [&] {
    for (auto& u : bed.users()) u->client->launch();
  });
  // One join every 10 s.
  for (int i = 0; i < maxUsers; ++i) {
    bed.sim().schedule(TimePoint::epoch() + Duration::seconds(5 + 10 * i),
                       [&, i] { bed.user(i).client->joinEvent(); });
  }

  TestUser& watcher = bed.user(0);
  std::printf("%8s %8s %12s %8s %8s %8s %8s\n", "time", "users", "down Kbps",
              "FPS", "CPU %", "GPU %", "mem GB");
  for (int i = 1; i <= maxUsers; ++i) {
    const double tEnd = 5.0 + 10.0 * i;
    bed.sim().run(TimePoint::epoch() + Duration::seconds(tEnd));
    const auto from = TimePoint::epoch() + Duration::seconds(tEnd - 8);
    const MetricsSample m =
        watcher.headset->metrics().averageOver(from, bed.sim().now());
    std::printf("%7.0fs %8d %12.1f %8.1f %8.0f %8.0f %8.2f\n", tEnd, i,
                watcher.capture
                    ->meanRate(Channel::DataDown, static_cast<std::size_t>(tEnd - 8),
                               static_cast<std::size_t>(tEnd - 1))
                    .toKbps(),
                m.fps, m.cpuUtilPct, m.gpuUtilPct, m.memoryGB);
  }

  std::printf(
      "\nThe linear downlink growth and the FPS/CPU climb are the paper's\n"
      "core scalability finding (§6): the server forwards every avatar's\n"
      "data to every attendee, unaggregated. Only AltspaceVR filters by\n"
      "viewport — try './social_event altspacevr %d' and then turn away:\n",
      maxUsers);

  // Demonstrate the viewport effect at the end: user 0 turns 180°.
  watcher.client->motion().turnSteps(8);
  const double tTurn = bed.sim().now().toSeconds();
  bed.sim().runFor(Duration::seconds(15));
  std::printf("after turning away at %.0fs: downlink %.1f Kbps (%s)\n", tTurn,
              watcher.capture
                  ->meanRate(Channel::DataDown,
                             static_cast<std::size_t>(tTurn + 5),
                             static_cast<std::size_t>(tTurn + 14))
                  .toKbps(),
              spec.data.viewportFilter
                  ? "dropped — server-side viewport filtering"
                  : "unchanged — this platform forwards regardless");
  return 0;
}
