// Crowd experiment driven by AutoDriver scripts (§9): the paper's authors
// describe extending Oculus' AutoDriver to run large-scale crowd-sourced
// measurements from pre-defined inputs. Here each participant replays a
// text script; the harness collects the familiar metrics.
//
//   ./crowd_experiment [platform] [participants]

#include <cstdio>
#include <string>

#include "core/autodriver.hpp"
#include "core/latency.hpp"

using namespace msim;

int main(int argc, char** argv) {
  const std::string name = argc > 1 ? argv[1] : "recroom";
  const int participants = argc > 2 ? std::max(2, std::atoi(argv[2])) : 6;

  PlatformSpec spec = platforms::recRoom();
  for (const PlatformSpec& p : platforms::allFive()) {
    std::string lower = p.name;
    for (char& c : lower) c = static_cast<char>(std::tolower(c));
    lower.erase(std::remove(lower.begin(), lower.end(), ' '), lower.end());
    if (lower == name) spec = p;
  }

  std::printf("== AutoDriver crowd experiment: %d participants on %s ==\n\n",
              participants, spec.name.c_str());

  // Every participant runs the same scripted session, staggered by 5 s:
  // launch, browse, join, walk to a spot, greet (visible action), chat.
  const char* kScriptTemplate =
      "0 launch\n"
      "8 join\n"
      "8.2 wander 0\n"
      "9 face 0 0\n"
      "12 act\n"      // wave hello
      "30 turn 8\n"   // look around
      "40 turn -8\n"
      "70 act\n"      // wave goodbye
      "80 leave\n";

  Testbed bed{2026};
  bed.deploy(spec);
  std::vector<std::unique_ptr<AutoDriver>> drivers;
  for (int i = 0; i < participants; ++i) {
    TestUserConfig cfg;
    cfg.wander = false;
    TestUser& user = bed.addUser(cfg);
    // Spread participants on a circle so everyone sees everyone.
    const double angle = 2.0 * M_PI * i / participants;
    user.client->motion().setPose(
        Pose{4.0 * std::cos(angle), 4.0 * std::sin(angle), 0});
    drivers.push_back(std::make_unique<AutoDriver>(bed, user));
    drivers.back()->play(DriverScript::parse(kScriptTemplate),
                         TimePoint::epoch() + Duration::seconds(5.0 * i));
  }

  const double endSec = 5.0 * participants + 85.0;
  bed.sim().runFor(Duration::seconds(endSec));

  std::printf("%6s %12s %8s %8s %10s %12s\n", "user", "down Kbps", "FPS",
              "CPU %", "acts seen", "stale ratio");
  for (int i = 0; i < participants; ++i) {
    TestUser& user = bed.user(i);
    const double joinSec = 5.0 * i + 8.0;
    const auto from = TimePoint::epoch() + Duration::seconds(joinSec + 5);
    const auto to = TimePoint::epoch() + Duration::seconds(joinSec + 60);
    const MetricsSample m = user.headset->metrics().averageOver(from, to);
    // How many of the other participants' greetings reached this screen?
    int actsSeen = 0;
    for (int j = 0; j < participants; ++j) {
      if (j == i) continue;
      for (const std::uint64_t action : drivers[j]->actionsPerformed()) {
        if (user.headset->firstDisplayLocal(action)) ++actsSeen;
      }
    }
    std::printf("%6d %12.1f %8.1f %8.0f %10d %12.3f\n", i + 1,
                user.capture
                    ->meanRate(Channel::DataDown,
                               static_cast<std::size_t>(joinSec + 5),
                               static_cast<std::size_t>(joinSec + 60))
                    .toKbps(),
                m.fps, m.cpuUtilPct, actsSeen,
                user.client->visibleStaleRatio());
  }
  std::printf(
      "\nEvery row ran the same replayable script — the §9 recipe for\n"
      "crowd-sourced measurements without manual headset operation.\n");
  return 0;
}
