// Crowd experiment driven by AutoDriver scripts (§9): the paper's authors
// describe extending Oculus' AutoDriver to run large-scale crowd-sourced
// measurements from pre-defined inputs. Here each participant replays a
// text script; the harness collects the familiar metrics.
//
//   ./crowd_experiment [platform] [participants] [replicates]
//
// With replicates > 1 the whole scripted session is re-run under different
// seeds on the seed-sweep pool (core/seedsweep.hpp) and the table reports
// per-user means across replicates — the "many crowd-sourced sessions"
// shape of §9 without any extra wall-clock on a multicore host.

#include <cstdio>
#include <string>
#include <vector>

#include "core/autodriver.hpp"
#include "core/latency.hpp"
#include "core/seedsweep.hpp"

using namespace msim;

namespace {

struct UserRow {
  double downKbps{0.0};
  double fps{0.0};
  double cpuPct{0.0};
  double actsSeen{0.0};
  double staleRatio{0.0};
};

// Every participant runs the same scripted session, staggered by 5 s:
// launch, browse, join, walk to a spot, greet (visible action), chat.
constexpr const char* kScriptTemplate =
    "0 launch\n"
    "8 join\n"
    "8.2 wander 0\n"
    "9 face 0 0\n"
    "12 act\n"      // wave hello
    "30 turn 8\n"   // look around
    "40 turn -8\n"
    "70 act\n"      // wave goodbye
    "80 leave\n";

std::vector<UserRow> runCrowdSession(const PlatformSpec& spec,
                                     int participants, std::uint64_t seed) {
  Testbed bed{seed};
  bed.deploy(spec);
  std::vector<std::unique_ptr<AutoDriver>> drivers;
  for (int i = 0; i < participants; ++i) {
    TestUserConfig cfg;
    cfg.wander = false;
    TestUser& user = bed.addUser(cfg);
    // Spread participants on a circle so everyone sees everyone.
    const double angle = 2.0 * M_PI * i / participants;
    user.client->motion().setPose(
        Pose{4.0 * std::cos(angle), 4.0 * std::sin(angle), 0});
    drivers.push_back(std::make_unique<AutoDriver>(bed, user));
    drivers.back()->play(DriverScript::parse(kScriptTemplate),
                         TimePoint::epoch() + Duration::seconds(5.0 * i));
  }

  const double endSec = 5.0 * participants + 85.0;
  bed.sim().runFor(Duration::seconds(endSec));

  std::vector<UserRow> rows;
  rows.reserve(static_cast<std::size_t>(participants));
  for (int i = 0; i < participants; ++i) {
    TestUser& user = bed.user(i);
    const double joinSec = 5.0 * i + 8.0;
    const auto from = TimePoint::epoch() + Duration::seconds(joinSec + 5);
    const auto to = TimePoint::epoch() + Duration::seconds(joinSec + 60);
    const MetricsSample m = user.headset->metrics().averageOver(from, to);
    // How many of the other participants' greetings reached this screen?
    int actsSeen = 0;
    for (int j = 0; j < participants; ++j) {
      if (j == i) continue;
      for (const std::uint64_t action : drivers[j]->actionsPerformed()) {
        if (user.headset->firstDisplayLocal(action)) ++actsSeen;
      }
    }
    UserRow row;
    row.downKbps = user.capture
                       ->meanRate(Channel::DataDown,
                                  static_cast<std::size_t>(joinSec + 5),
                                  static_cast<std::size_t>(joinSec + 60))
                       .toKbps();
    row.fps = m.fps;
    row.cpuPct = m.cpuUtilPct;
    row.actsSeen = actsSeen;
    row.staleRatio = user.client->visibleStaleRatio();
    rows.push_back(row);
  }
  return rows;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string name = argc > 1 ? argv[1] : "recroom";
  const int participants = argc > 2 ? std::max(2, std::atoi(argv[2])) : 6;
  const int replicates = argc > 3 ? std::max(1, std::atoi(argv[3])) : 1;

  PlatformSpec spec = platforms::recRoom();
  for (const PlatformSpec& p : platforms::allFive()) {
    std::string lower = p.name;
    for (char& c : lower) c = static_cast<char>(std::tolower(c));
    lower.erase(std::remove(lower.begin(), lower.end(), ' '), lower.end());
    if (lower == name) spec = p;
  }

  std::printf(
      "== AutoDriver crowd experiment: %d participants on %s (%d replicate%s)"
      " ==\n\n",
      participants, spec.name.c_str(), replicates, replicates == 1 ? "" : "s");

  std::vector<std::uint64_t> seeds;
  for (int r = 0; r < replicates; ++r) {
    seeds.push_back(2026 + static_cast<std::uint64_t>(r) * 101);
  }
  const auto sessions = runSeedSweep(seeds, [&](std::uint64_t seed) {
    return runCrowdSession(spec, participants, seed);
  });

  std::printf("%6s %12s %8s %8s %10s %12s\n", "user", "down Kbps", "FPS",
              "CPU %", "acts seen", "stale ratio");
  for (int i = 0; i < participants; ++i) {
    UserRow mean;
    for (const auto& session : sessions) {
      mean.downKbps += session[i].downKbps;
      mean.fps += session[i].fps;
      mean.cpuPct += session[i].cpuPct;
      mean.actsSeen += session[i].actsSeen;
      mean.staleRatio += session[i].staleRatio;
    }
    const auto n = static_cast<double>(sessions.size());
    std::printf("%6d %12.1f %8.1f %8.0f %10.1f %12.3f\n", i + 1,
                mean.downKbps / n, mean.fps / n, mean.cpuPct / n,
                mean.actsSeen / n, mean.staleRatio / n);
  }
  std::printf(
      "\nEvery row ran the same replayable script — the §9 recipe for\n"
      "crowd-sourced measurements without manual headset operation.\n");
  return 0;
}
