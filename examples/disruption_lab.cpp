// Disruption lab: apply tc-netem-style impairments to one user of a Worlds
// shooting game and watch the §8 couplings unfold live — the TCP-priority
// gate, the CPU/FPS collapse under downlink starvation, and the session
// break after a TCP blackout.
//
//   ./disruption_lab [downlink|uplink|tcponly]

#include <cstdio>
#include <string>

#include "core/experiments.hpp"

using namespace msim;

int main(int argc, char** argv) {
  const std::string mode = argc > 1 ? argv[1] : "downlink";
  DisruptionKind kind = DisruptionKind::DownlinkBandwidth;
  if (mode == "uplink") kind = DisruptionKind::UplinkBandwidth;
  if (mode == "tcponly") kind = DisruptionKind::TcpUplinkOnly;

  std::printf("== disruption lab: Worlds shooting game, %s schedule ==\n",
              mode.c_str());
  std::printf("(schedules follow §8: 40 s stages for bandwidth, 60 s for "
              "TCP-only; then the link is restored)\n\n");

  const DisruptionTimeline d = runWorldsDisruption(kind, 99);

  std::printf("%6s %10s %10s %9s %6s %6s %6s %6s\n", "t(s)", "udp-up",
              "udp-down", "tcp-up", "cpu%", "gpu%", "fps", "stale");
  const std::size_t n = d.udpUpKbps.size();
  for (std::size_t t = 5; t < n; t += 5) {
    std::printf("%6zu %10.0f %10.0f %9.0f %6.0f %6.0f %6.0f %6.0f\n", t,
                d.udpUpKbps[t], d.udpDownKbps[t], d.tcpUpKbps[t],
                t < d.cpuPct.size() ? d.cpuPct[t] : 0,
                t < d.gpuPct.size() ? d.gpuPct[t] : 0,
                t < d.fps.size() ? d.fps[t] : 0,
                t < d.staleFps.size() ? d.staleFps[t] : 0);
  }
  if (d.screenFrozeAtEnd) {
    std::printf("\n*** the user's screen froze at t=%.0f s and never "
                "recovered — the §8.1 session break ***\n",
                d.frozeAtSec);
  } else {
    std::printf("\nthe session survived and recovered once the link was "
                "restored.\n");
  }
  return 0;
}
